package serve

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cghti"
	"cghti/internal/artifact"
	"cghti/internal/detect"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/trojan"
)

// jobTimeout resolves a request's timeout_ms against the server cap: a
// request may shorten its deadline but never extend it past
// Config.JobTimeout.
func (s *Server) jobTimeout(ms int64) time.Duration {
	d := s.cfg.JobTimeout
	if ms > 0 {
		if req := time.Duration(ms) * time.Millisecond; req < d {
			d = req
		}
	}
	return d
}

// GenerateRequest submits one trojan-generation job: a .bench netlist
// plus the pipeline knobs worth exposing over the wire. Zero values
// select the library defaults.
type GenerateRequest struct {
	// Bench is the golden netlist in .bench text form.
	Bench string `json:"bench"`
	// Name names the circuit (default "job").
	Name string `json:"name,omitempty"`
	// Seed makes the pipeline deterministic.
	Seed int64 `json:"seed,omitempty"`
	// Instances is the number of infected netlists to emit.
	Instances int `json:"instances,omitempty"`
	// MinTriggerNodes is the paper's q.
	MinTriggerNodes int `json:"min_trigger_nodes,omitempty"`
	// RareVectors is the Algorithm 1 vector count |V|.
	RareVectors int `json:"rare_vectors,omitempty"`
	// RareThreshold is θ_RN as a fraction.
	RareThreshold float64 `json:"rare_threshold,omitempty"`
	// Payload selects the trojan effect: "flip", "leak" or "force".
	Payload string `json:"payload,omitempty"`
	// ActiveLow makes the trigger fire on 0.
	ActiveLow bool `json:"active_low,omitempty"`
	// TimeoutMS shortens the job deadline below the server cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// GeneratedBench is one emitted infected netlist.
type GeneratedBench struct {
	Name         string `json:"name"`
	Bench        string `json:"bench"`
	Trigger      string `json:"trigger"`
	Activation   uint8  `json:"activation"`
	TriggerNodes int    `json:"trigger_nodes"`
	Payload      string `json:"payload"`
	Victim       string `json:"victim"`
}

// GenerateResult is a generate job's outcome.
type GenerateResult struct {
	Circuit      string           `json:"circuit"`
	RareNodes    int              `json:"rare_nodes"`
	Cliques      int              `json:"cliques"`
	CachedStages []string         `json:"cached_stages,omitempty"`
	Benchmarks   []GeneratedBench `json:"benchmarks"`
}

func parsePayload(s string) (trojan.PayloadKind, error) {
	switch s {
	case "", "flip":
		return trojan.PayloadFlip, nil
	case "leak":
		return trojan.PayloadLeakToOutput, nil
	case "force":
		return trojan.PayloadForce, nil
	}
	return 0, fmt.Errorf("unknown payload %q (want flip, leak or force)", s)
}

// generateJob validates the request (netlist parse, payload name,
// config sanity) and returns the run closure plus the netlist's content
// fingerprint — the fleet's sharding key, so identical submissions land
// on one owner however they enter the fleet. Validation errors are the
// submitter's 400, not a failed job. The sink receives the pipeline's
// stage progress events — wired to the job's SSE feed by runJob.
func (s *Server) generateJob(req GenerateRequest) (runFunc, artifact.Fingerprint, error) {
	name := req.Name
	if name == "" {
		name = "job"
	}
	n, err := cghti.ParseBenchString(req.Bench, name)
	if err != nil {
		return nil, artifact.Fingerprint{}, err
	}
	payload, err := parsePayload(req.Payload)
	if err != nil {
		return nil, artifact.Fingerprint{}, err
	}
	cfg := cghti.Config{
		RareVectors:     req.RareVectors,
		RareThreshold:   req.RareThreshold,
		MinTriggerNodes: req.MinTriggerNodes,
		Instances:       req.Instances,
		Payload:         payload,
		ActiveLow:       req.ActiveLow,
		Seed:            req.Seed,
		Workers:         s.cfg.JobWorkers,
		Deadline:        s.jobTimeout(req.TimeoutMS),
		Cache:           s.cfg.Cache,
	}
	if err := cfg.Validate(); err != nil {
		return nil, artifact.Fingerprint{}, err
	}
	run := func(ctx context.Context, reg *obs.Registry, trace *obs.Trace, sink obs.Sink) (any, error) {
		runCfg := cfg
		runCfg.Metrics = reg
		runCfg.Trace = trace
		runCfg.Progress = sink
		res, err := cghti.GenerateContext(ctx, n, runCfg)
		if err != nil {
			return nil, err
		}
		out := &GenerateResult{
			Circuit:      res.Base.Name,
			RareNodes:    res.RareSet.Len(),
			Cliques:      len(res.Cliques),
			CachedStages: res.CachedStages,
		}
		for _, b := range res.Benchmarks {
			var sb strings.Builder
			if err := cghti.WriteBench(&sb, b.Netlist); err != nil {
				return nil, err
			}
			out.Benchmarks = append(out.Benchmarks, GeneratedBench{
				Name:         b.Netlist.Name,
				Bench:        sb.String(),
				Trigger:      b.Instance.TriggerOut,
				Activation:   b.Instance.Trigger.Spec.ActivationValue(),
				TriggerNodes: len(b.Clique.Vertices),
				Payload:      b.Instance.Payload.String(),
				Victim:       b.Instance.Victim,
			})
		}
		return out, nil
	}
	return run, artifact.NetlistFingerprint(n), nil
}

// DetectRequest submits one detection-evaluation job: a golden/infected
// netlist pair and the scheme to run.
type DetectRequest struct {
	// Golden and Infected are .bench netlists.
	Golden   string `json:"golden"`
	Infected string `json:"infected"`
	// Trigger names the trigger net in the infected netlist.
	Trigger string `json:"trigger"`
	// Activation is the firing value (default 1).
	Activation *int `json:"activation,omitempty"`
	// Scheme is "random", "mero" or "ndatpg" (default "random").
	Scheme string `json:"scheme,omitempty"`
	// Patterns is the random-scheme budget (default 100000).
	Patterns int `json:"patterns,omitempty"`
	// N is MERO's / ND-ATPG's N-detect parameter.
	N int `json:"n,omitempty"`
	// Pool is MERO's random pool size.
	Pool int `json:"pool,omitempty"`
	// Theta and Vectors parameterize the rare-node extraction MERO and
	// ND-ATPG start from.
	Theta   float64 `json:"theta,omitempty"`
	Vectors int     `json:"vectors,omitempty"`
	// Seed drives every random draw.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMS shortens the job deadline below the server cap.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// DetectResult is a detect job's outcome.
type DetectResult struct {
	Scheme       string `json:"scheme"`
	Vectors      int    `json:"vectors"`
	Triggered    bool   `json:"triggered"`
	FirstTrigger int    `json:"first_trigger"`
	Detected     bool   `json:"detected"`
	FirstDetect  int    `json:"first_detect"`
	RareNodes    int    `json:"rare_nodes,omitempty"`
}

// detectJob validates the request and returns the run closure plus the
// golden netlist's content fingerprint (the fleet's sharding key, like
// generateJob's). Detect phases are coarser than the generate
// pipeline's, so the closure emits its own start/end events per phase
// into the sink (rare extraction, then the scheme run) — the SSE stream
// shows the same shape either way.
func (s *Server) detectJob(req DetectRequest) (runFunc, artifact.Fingerprint, error) {
	golden, err := cghti.ParseBenchString(req.Golden, "golden")
	if err != nil {
		return nil, artifact.Fingerprint{}, fmt.Errorf("golden: %w", err)
	}
	infected, err := cghti.ParseBenchString(req.Infected, "infected")
	if err != nil {
		return nil, artifact.Fingerprint{}, fmt.Errorf("infected: %w", err)
	}
	trigID, ok := infected.Lookup(req.Trigger)
	if !ok {
		return nil, artifact.Fingerprint{}, fmt.Errorf("trigger net %q not found in infected netlist", req.Trigger)
	}
	scheme := req.Scheme
	if scheme == "" {
		scheme = "random"
	}
	switch scheme {
	case "random", "mero", "ndatpg":
	default:
		return nil, artifact.Fingerprint{}, fmt.Errorf("unknown scheme %q (want random, mero or ndatpg)", scheme)
	}
	activation := uint8(1)
	if req.Activation != nil {
		activation = uint8(*req.Activation & 1)
	}
	patterns := req.Patterns
	if patterns <= 0 {
		patterns = 100000
	}
	timeout := s.jobTimeout(req.TimeoutMS)
	tgt := detect.Target{Golden: golden, Infected: infected, TriggerOut: trigID, Activation: activation}

	run := func(ctx context.Context, reg *obs.Registry, trace *obs.Trace, sink obs.Sink) (any, error) {
		ctx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		var rs *rare.Set
		var err error
		if scheme == "mero" || scheme == "ndatpg" {
			sp := trace.Start("rare_extract")
			obs.Emit(sink, obs.Event{Stage: "rare_extract", Kind: obs.StageStart})
			rs, err = rare.ExtractCached(ctx, s.cfg.Cache, golden, rare.Config{
				Vectors:   req.Vectors,
				Threshold: req.Theta,
				Seed:      req.Seed,
				Workers:   s.cfg.JobWorkers,
			})
			if err != nil {
				sp.Abort()
				obs.Emit(sink, obs.Event{Stage: "rare_extract", Kind: obs.StageAbort, Elapsed: sp.Duration()})
				return nil, err
			}
			sp.End()
			obs.Emit(sink, obs.Event{Stage: "rare_extract", Kind: obs.StageEnd, Elapsed: sp.Duration()})
		}
		sp := trace.Start(scheme)
		obs.Emit(sink, obs.Event{Stage: scheme, Kind: obs.StageStart})
		var ts *detect.TestSet
		switch scheme {
		case "random":
			ts = detect.RandomTestSetContext(ctx, golden, patterns, req.Seed)
		case "mero":
			ts, err = detect.MEROContext(ctx, golden, rs, detect.MEROConfig{
				N: req.N, RandomVectors: req.Pool, Seed: req.Seed, Workers: s.cfg.JobWorkers,
			})
		case "ndatpg":
			ts, err = detect.NDATPGContext(ctx, golden, rs, detect.NDATPGConfig{
				N: req.N, Seed: req.Seed, Workers: s.cfg.JobWorkers,
			})
		}
		if err != nil {
			sp.Abort()
			obs.Emit(sink, obs.Event{Stage: scheme, Kind: obs.StageAbort, Elapsed: sp.Duration()})
			return nil, err
		}
		out, err := detect.EvaluateContext(ctx, tgt, ts, detect.EvalConfig{Workers: s.cfg.JobWorkers})
		if err != nil {
			sp.Abort()
			obs.Emit(sink, obs.Event{Stage: scheme, Kind: obs.StageAbort, Elapsed: sp.Duration()})
			return nil, err
		}
		sp.End()
		obs.Emit(sink, obs.Event{Stage: scheme, Kind: obs.StageEnd, Elapsed: sp.Duration()})
		res := &DetectResult{
			Scheme:       scheme,
			Vectors:      ts.Len(),
			Triggered:    out.Triggered,
			FirstTrigger: out.FirstTrigger,
			Detected:     out.Detected,
			FirstDetect:  out.FirstDetect,
		}
		if rs != nil {
			res.RareNodes = rs.Len()
		}
		return res, nil
	}
	return run, artifact.NetlistFingerprint(golden), nil
}
