package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cghti/internal/obs/obstest"
)

// TestMetricsPrometheus runs a real job through the daemon, scrapes
// /metrics, and validates the body against the Prometheus text-format
// grammar: correct Content-Type, well-formed HELP/TYPE/sample lines,
// cumulative bucket series, and at least the serving histograms
// present with observations.
func TestMetricsPrometheus(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := genRequest(11)
	req.Bench = benchText(t, "c17")
	resp := postJSON(t, ts, "/v1/generate", req)
	id := decodeBody[submitResponse](t, resp).ID
	if view := pollJob(t, ts, id); view.Status != StatusDone {
		t.Fatalf("job status = %s, want done", view.Status)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	if mr.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", mr.StatusCode)
	}
	if ct := mr.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	histograms, problems := obstest.ValidatePrometheusText(body)
	for _, p := range problems {
		t.Error(p)
	}
	if histograms < 1 {
		t.Fatalf("exposition has %d histogram families, want at least 1:\n%s", histograms, body)
	}
	// The serving histograms must be present with real observations:
	// scoped per-job registries mirror into the process default the
	// exposition is rendered from.
	for _, want := range []string{
		`serve_queue_wait_seconds_bucket{le="+Inf"}`,
		"serve_queue_wait_seconds_count",
		"serve_job_time_generate_seconds_count",
		"serve_handler_time_seconds_count",
		"pipeline_stage_time_rare_extract_seconds_count",
		"# TYPE serve_jobs_accepted counter",
		"# TYPE serve_queue_capacity gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// No sample may carry the registry's dotted names un-sanitized.
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.ContainsRune(name, '.') {
			t.Errorf("sample line leaks a dotted metric name: %q", line)
		}
	}
}
