package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"cghti/internal/journal"
)

// RecoveryReport summarizes what Recover rebuilt from the journal.
type RecoveryReport struct {
	// Jobs is the number of journaled jobs replayed.
	Jobs int
	// Requeued is how many queued-at-crash jobs went back on the queue.
	Requeued int
	// Restarted is how many running-at-crash jobs went back on the
	// queue (a subset of crash recovery: these cost a redone attempt).
	Restarted int
	// Terminal is how many jobs were already finished and were restored
	// for querying only.
	Terminal int
	// Poisoned is how many jobs exceeded MaxAttempts during this
	// recovery and were parked instead of requeued.
	Poisoned int
	// TornSegments counts journal segments whose replay stopped at a
	// torn or corrupt frame.
	TornSegments int
}

// String renders the report as the daemon's one-line boot log.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("recovered %d jobs: %d requeued (%d mid-run), %d terminal, %d poisoned, %d torn segments",
		r.Jobs, r.Requeued+r.Restarted, r.Restarted, r.Terminal, r.Poisoned, r.TornSegments)
}

// Recover replays the configured journal and rebuilds the daemon's job
// table: terminal jobs come back queryable (status, error, result
// fingerprint — result bodies are not journaled), jobs that were queued
// or running at crash time are re-enqueued (with exponential backoff
// per prior attempt), and jobs that have already been started
// MaxAttempts times are poisoned — parked terminally so one poisonous
// request cannot crash-loop the process forever. Idempotency keys are
// re-registered, so a client retrying a submit it never saw
// acknowledged gets the original job back.
//
// Call after New and before Start (no workers are running, so the
// queue can be rebuilt safely). With no journal configured it is a
// no-op; calling twice is an error.
func (s *Server) Recover() (*RecoveryReport, error) {
	if s.cfg.Journal == nil {
		return nil, nil
	}
	if !s.recovered.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("serve: Recover called twice")
	}
	st, err := s.cfg.Journal.Replay()
	if err != nil {
		return nil, err
	}

	rep := &RecoveryReport{Jobs: len(st.Order), TornSegments: st.TornSegments}
	now := time.Now()
	var requeue []*Job
	var poisoned []*Job
	maxID := int64(0)

	s.mu.Lock()
	for _, id := range st.Order {
		js := st.Jobs[id]
		if n := jobIDNumber(js.ID); n > maxID {
			maxID = n
		}
		j := &Job{
			ID:        js.ID,
			Kind:      js.Kind,
			Status:    Status(js.Status),
			Submitted: time.Unix(0, js.SubmittedAt),
			Key:       js.Key,
			Attempts:  js.Attempts,
			Err:       js.Err,
			ResultFP:  js.Result,
			feed:      newEventFeed(),
		}
		if js.FinishedAt != 0 {
			j.Finished = time.Unix(0, js.FinishedAt)
		}

		switch {
		case j.Status.Terminal():
			rep.Terminal++
		case js.Attempts >= s.cfg.MaxAttempts:
			// Started MaxAttempts times and the process still died each
			// time: park it rather than risk another crash loop.
			j.Status = StatusPoisoned
			j.Err = fmt.Sprintf("poisoned after %d attempts", js.Attempts)
			j.Finished = now
			poisoned = append(poisoned, j)
			rep.Poisoned++
			cntPoisoned.Inc()
		default:
			run, rerr := s.rebuildRun(js.Kind, js.Payload)
			if rerr != nil {
				// The payload no longer parses (corrupt journal bytes or
				// a schema change): fail it visibly instead of dropping.
				j.Status = StatusFailed
				j.Err = "recovery: " + rerr.Error()
				j.Finished = now
				rep.Terminal++
			} else {
				if j.Status == StatusRunning {
					rep.Restarted++
				} else {
					rep.Requeued++
				}
				j.Status = StatusQueued
				j.run = run
				if js.Attempts > 0 {
					j.NotBefore = now.Add(retryBackoff(s.cfg.RetryBase, js.Attempts))
				}
				requeue = append(requeue, j)
			}
		}

		s.jobs[j.ID] = j
		if j.Status.Terminal() {
			s.finished = append(s.finished, j.ID)
		}
		if j.Key != "" {
			s.idem[j.Key] = j.ID
		}
	}
	// Trim restored terminal jobs to the retention cap, oldest first
	// (Order is first-submitted order, so finished already is too).
	for len(s.finished) > s.cfg.RetainJobs {
		old := s.finished[0]
		if evicted, ok := s.jobs[old]; ok && evicted.Key != "" && s.idem[evicted.Key] == old {
			delete(s.idem, evicted.Key)
		}
		delete(s.jobs, old)
		s.finished = s.finished[1:]
	}
	// Journaled IDs must never be reissued: resume the counter past the
	// highest replayed ID.
	if maxID > s.nextID.Load() {
		s.nextID.Store(maxID)
	}
	// Recovered work must not eat the whole intake queue: grow it to
	// hold the backlog plus the configured depth. Safe pre-Start — no
	// worker holds the old channel.
	if len(requeue) > 0 {
		s.queue = make(chan *Job, s.cfg.QueueDepth+len(requeue))
		for _, j := range requeue {
			s.queue <- j
		}
		gaugeQueueCap.Set(int64(cap(s.queue)))
		gaugeQueued.Set(int64(len(s.queue)))
	}
	s.mu.Unlock()

	// Journal this recovery's poisoning decisions: the journal must
	// replay to the same verdict next time.
	for _, j := range poisoned {
		s.journalAppend(journal.Record{Type: journal.EvPoisoned, Job: j.ID, Err: j.Err})
	}
	// Close the feeds of restored terminal jobs so SSE consumers of a
	// finished job get replay + result instead of a hang.
	s.mu.Lock()
	var toClose []*Job
	for _, j := range s.jobs {
		if j.Status.Terminal() {
			toClose = append(toClose, j)
		}
	}
	s.mu.Unlock()
	for _, j := range toClose {
		j.feed.closeFinal(j.Status, j.Err)
	}

	cntRecovered.Add(int64(rep.Requeued + rep.Restarted))
	if err := s.cfg.Journal.Compact(s.keepInJournal); err != nil {
		return rep, fmt.Errorf("serve: compact after recovery: %w", err)
	}
	return rep, nil
}

// retryBackoff is the recovered-job restart delay: RetryBase doubled
// per prior attempt, capped at maxRetryBackoff.
func retryBackoff(base time.Duration, attempts int) time.Duration {
	if attempts < 1 {
		return 0
	}
	d := base << uint(attempts-1)
	if d > maxRetryBackoff || d <= 0 { // <=0 guards shift overflow
		d = maxRetryBackoff
	}
	return d
}

// jobIDNumber extracts the numeric suffix of a "job-N" ID (0 when the
// ID has another shape).
func jobIDNumber(id string) int64 {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// rebuildRun reconstructs a job's run closure from its journaled
// request payload. The fingerprint is discarded: a replayed job is
// already this node's to run — re-deciding ownership on recovery would
// let a ring change strand journaled work.
func (s *Server) rebuildRun(kind string, payload []byte) (runFunc, error) {
	switch kind {
	case "generate":
		var req GenerateRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("generate payload: %w", err)
		}
		run, _, err := s.generateJob(req)
		return run, err
	case "detect":
		var req DetectRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("detect payload: %w", err)
		}
		run, _, err := s.detectJob(req)
		return run, err
	}
	return nil, fmt.Errorf("unknown job kind %q", kind)
}
