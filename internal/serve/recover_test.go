package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cghti/internal/artifact"
	"cghti/internal/journal"
)

// journaledServer builds a Server over a journal in dir, sharing cache
// (which may be nil for a fresh one). The caller owns Start/Drain.
func journaledServer(t *testing.T, dir string, cache *artifact.Cache, cfg Config) (*Server, *journal.Journal) {
	t.Helper()
	jnl, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = jnl
	cfg.Cache = cache
	return New(cfg), jnl
}

// postKeyed is postJSON plus an Idempotency-Key header.
func postKeyed(t *testing.T, ts *httptest.Server, path, key string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if key != "" {
		hr.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestIdempotentSubmit pins the dedupe contract on a live daemon: the
// second submit with the same key returns 200, the original job ID, and
// the replay header; a different key gets a fresh job.
func TestIdempotentSubmit(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := genRequest(1)
	req.Bench = benchText(t, "c17")

	first := postKeyed(t, ts, "/v1/generate", "key-A", req)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", first.StatusCode)
	}
	id := decodeBody[submitResponse](t, first).ID

	second := postKeyed(t, ts, "/v1/generate", "key-A", req)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("replayed submit = %d, want 200", second.StatusCode)
	}
	if second.Header.Get("Idempotency-Replayed") != "true" {
		t.Fatal("missing Idempotency-Replayed header")
	}
	if got := decodeBody[submitResponse](t, second).ID; got != id {
		t.Fatalf("replayed ID = %s, want original %s", got, id)
	}

	third := postKeyed(t, ts, "/v1/generate", "key-B", req)
	if third.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh-key submit = %d, want 202", third.StatusCode)
	}
	if got := decodeBody[submitResponse](t, third).ID; got == id {
		t.Fatal("distinct keys must get distinct jobs")
	}
}

// TestRecoverRequeuesAndFinishes is the in-process crash drill: jobs
// are accepted (journaled, never started), the process "dies" (the
// server is abandoned, the journal closed), and a successor over the
// same journal dir replays them to completion. Also pins: idempotency
// keys survive the restart, and the ID counter resumes past replayed
// IDs.
func TestRecoverRequeuesAndFinishes(t *testing.T) {
	dir := t.TempDir()
	cache := artifact.NewCache(0, 0)

	// Incarnation 1: accept 3 jobs but never start workers — they are
	// journaled as queued, exactly the crash-mid-backlog shape.
	s1, jnl1 := journaledServer(t, dir, cache, Config{Workers: 1, QueueDepth: 8})
	ts1 := httptest.NewServer(s1.Handler())
	req := genRequest(1)
	req.Bench = benchText(t, "c17")
	var ids []string
	for i := 0; i < 3; i++ {
		r := req
		r.Seed = int64(i + 1)
		resp := postKeyed(t, ts1, "/v1/generate", "crash-key-"+string(rune('a'+i)), r)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, resp.StatusCode)
		}
		ids = append(ids, decodeBody[submitResponse](t, resp).ID)
	}
	ts1.Close()
	jnl1.Close() // the "crash": no drain, no completion records

	// Incarnation 2: recover and run.
	s2, jnl2 := journaledServer(t, dir, cache, Config{Workers: 2, QueueDepth: 8})
	defer jnl2.Close()
	rec, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Jobs != 3 || rec.Requeued != 3 || rec.Restarted != 0 || rec.Poisoned != 0 {
		t.Fatalf("recovery report = %+v, want 3 requeued", rec)
	}
	s2.Start()
	defer s2.Drain(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	for _, id := range ids {
		view := pollJob(t, ts2, id)
		if view.Status != StatusDone {
			t.Fatalf("recovered job %s finished %s: %s", id, view.Status, view.Error)
		}
		if view.ResultFP == "" {
			t.Fatalf("recovered job %s has no result fingerprint", id)
		}
	}

	// The idempotency key registered before the crash still dedupes.
	resp := postKeyed(t, ts2, "/v1/generate", "crash-key-a", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart keyed resubmit = %d, want 200", resp.StatusCode)
	}
	if got := decodeBody[submitResponse](t, resp).ID; got != ids[0] {
		t.Fatalf("post-restart resubmit ID = %s, want original %s", got, ids[0])
	}

	// Fresh IDs continue past the replayed ones.
	resp2 := postKeyed(t, ts2, "/v1/generate", "", req)
	newID := decodeBody[submitResponse](t, resp2).ID
	for _, id := range ids {
		if newID == id {
			t.Fatalf("fresh job reused replayed ID %s", id)
		}
	}
	pollJob(t, ts2, newID)
}

// TestRecoverPoisonsRepeatOffenders pins the crash-loop breaker: a job
// whose journal shows MaxAttempts starts with no terminal record is
// parked as poisoned, not re-enqueued, and the verdict is journaled so
// the next restart agrees.
func TestRecoverPoisonsRepeatOffenders(t *testing.T) {
	dir := t.TempDir()
	// Craft a journal: job started 3 times, never finished — the
	// signature of a request that kills the process.
	jnl, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(GenerateRequest{Bench: benchText(t, "c17"), Seed: 1, Instances: 1, MinTriggerNodes: 2, RareVectors: 200, RareThreshold: 0.4})
	jnl.Append(journal.Record{Type: journal.EvSubmitted, Job: "job-1", Kind: "generate", Payload: payload})
	for a := 1; a <= 3; a++ {
		jnl.Append(journal.Record{Type: journal.EvStarted, Job: "job-1", Attempt: a})
	}
	jnl.Close()

	s, jnl2 := journaledServer(t, dir, nil, Config{Workers: 1, MaxAttempts: 3})
	defer jnl2.Close()
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Poisoned != 1 || rec.Requeued != 0 || rec.Restarted != 0 {
		t.Fatalf("recovery report = %+v, want 1 poisoned", rec)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	view := pollJob(t, ts, "job-1")
	if view.Status != StatusPoisoned {
		t.Fatalf("job status = %s, want poisoned", view.Status)
	}
	if view.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", view.Attempts)
	}

	// A third incarnation replays the poisoning as terminal state — it
	// must not try the job again.
	jnl2.Close()
	s3, jnl3 := journaledServer(t, dir, nil, Config{Workers: 1, MaxAttempts: 3})
	defer jnl3.Close()
	rec3, err := s3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Poisoned != 0 || rec3.Requeued != 0 || rec3.Terminal != 1 {
		t.Fatalf("re-recovery report = %+v, want 1 terminal", rec3)
	}
}

// TestRecoverBelowMaxAttemptsRetries pins the backoff path: a job with
// one prior attempt is re-enqueued (not poisoned) with NotBefore set.
func TestRecoverBelowMaxAttemptsRetries(t *testing.T) {
	dir := t.TempDir()
	jnl, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(GenerateRequest{Bench: benchText(t, "c17"), Seed: 1, Instances: 1, MinTriggerNodes: 2, RareVectors: 200, RareThreshold: 0.4})
	jnl.Append(journal.Record{Type: journal.EvSubmitted, Job: "job-1", Kind: "generate", Payload: payload})
	jnl.Append(journal.Record{Type: journal.EvStarted, Job: "job-1", Attempt: 1})
	jnl.Close()

	s, jnl2 := journaledServer(t, dir, nil, Config{Workers: 1, MaxAttempts: 3, RetryBase: 50 * time.Millisecond})
	defer jnl2.Close()
	rec, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Restarted != 1 {
		t.Fatalf("recovery report = %+v, want 1 restarted", rec)
	}
	s.mu.Lock()
	nb := s.jobs["job-1"].NotBefore
	s.mu.Unlock()
	if nb.IsZero() || time.Until(nb) > 100*time.Millisecond {
		t.Fatalf("NotBefore = %v, want ~50ms backoff", nb)
	}
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	view := pollJob(t, ts, "job-1")
	if view.Status != StatusDone {
		t.Fatalf("retried job finished %s: %s", view.Status, view.Error)
	}
	if view.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (journal attempt + retry)", view.Attempts)
	}
}

// TestJobsList pins GET /v1/jobs: full listing, status filter, limit
// truncation with an honest total.
func TestJobsList(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 8})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := genRequest(1)
	req.Bench = benchText(t, "c17")
	var ids []string
	for i := 0; i < 4; i++ {
		r := req
		r.Seed = int64(i + 1)
		resp := postJSON(t, ts, "/v1/generate", r)
		ids = append(ids, decodeBody[submitResponse](t, resp).ID)
	}
	for _, id := range ids {
		pollJob(t, ts, id)
	}

	type listResp struct {
		Jobs  []jobSummary `json:"jobs"`
		Total int          `json:"total"`
	}
	get := func(q string) listResp {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs%s = %d", q, resp.StatusCode)
		}
		return decodeBody[listResp](t, resp)
	}

	all := get("")
	if all.Total != 4 || len(all.Jobs) != 4 {
		t.Fatalf("full list: total=%d len=%d, want 4/4", all.Total, len(all.Jobs))
	}
	// Oldest-submitted first.
	for i := 1; i < len(all.Jobs); i++ {
		if all.Jobs[i-1].Submitted > all.Jobs[i].Submitted {
			t.Fatal("listing not sorted by submit time")
		}
	}

	done := get("?status=done")
	if done.Total != 4 {
		t.Fatalf("done filter total = %d, want 4", done.Total)
	}
	empty := get("?status=poisoned")
	if empty.Total != 0 || len(empty.Jobs) != 0 {
		t.Fatalf("poisoned filter = %d/%d, want empty", empty.Total, len(empty.Jobs))
	}

	limited := get("?limit=2")
	if len(limited.Jobs) != 2 || limited.Total != 4 {
		t.Fatalf("limit=2: len=%d total=%d, want 2 of 4", len(limited.Jobs), limited.Total)
	}

	if resp, _ := http.Get(ts.URL + "/v1/jobs?limit=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus limit = %d, want 400", resp.StatusCode)
	}
}

// sseEvents reads SSE lines until the "result" event (or EOF), with a
// deadline, returning the event names seen and the final status.
func sseEvents(t *testing.T, url string) (events []string, status string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
			events = append(events, event)
		case strings.HasPrefix(line, "data: ") && event == "result":
			var res struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal([]byte(line[len("data: "):]), &res); err != nil {
				t.Fatal(err)
			}
			return events, res.Status
		}
	}
	t.Fatalf("stream ended without result (saw %v, err %v)", events, sc.Err())
	return nil, ""
}

// TestEventFeedAcrossRestart is the SSE satellite: a consumer
// reconnecting to a recovered job's event stream gets a terminating
// "result" event — rebuilt from the journal's terminal record for
// already-finished jobs, or emitted live when the recovered job reruns
// — never a hang.
func TestEventFeedAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cache := artifact.NewCache(0, 0)

	// Incarnation 1: one job runs to done (terminal in journal), one is
	// accepted but never started (queued in journal).
	s1, jnl1 := journaledServer(t, dir, cache, Config{Workers: 1, QueueDepth: 8})
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	req := genRequest(1)
	req.Bench = benchText(t, "c17")
	doneID := decodeBody[submitResponse](t, postJSON(t, ts1, "/v1/generate", req)).ID
	if v := pollJob(t, ts1, doneID); v.Status != StatusDone {
		t.Fatalf("setup job finished %s", v.Status)
	}
	// Stall the single worker with a long job, then queue one behind it
	// so it is still queued at "crash" time.
	slow := req
	slow.Seed = 99
	slow.RareVectors = 5000
	postJSON(t, ts1, "/v1/generate", slow).Body.Close()
	queued := req
	queued.Seed = 2
	queuedID := decodeBody[submitResponse](t, postJSON(t, ts1, "/v1/generate", queued)).ID
	ts1.Close()
	jnl1.Close() // crash: no drain

	// Incarnation 2: recover.
	s2, jnl2 := journaledServer(t, dir, cache, Config{Workers: 2, QueueDepth: 8})
	defer jnl2.Close()
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Drain(context.Background())
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	// The finished job's feed must terminate immediately with its
	// journaled outcome — not hang waiting for progress that will never
	// come (the result body is gone, but the status survives).
	events, status := sseEvents(t, ts2.URL+"/v1/jobs/"+doneID+"/events")
	if status != string(StatusDone) {
		t.Fatalf("recovered-done SSE status = %s, want done", status)
	}
	if events[len(events)-1] != "result" {
		t.Fatalf("recovered-done SSE events = %v, want terminal result", events)
	}

	// The recovered-queued job's feed also terminates in a result —
	// whether the consumer catches the rerun live or connects after it
	// finished, the stream must never hang.
	events, status = sseEvents(t, ts2.URL+"/v1/jobs/"+queuedID+"/events")
	if status != string(StatusDone) {
		t.Fatalf("recovered-queued SSE status = %s, want done", status)
	}
	if events[len(events)-1] != "result" {
		t.Fatalf("recovered-queued SSE events = %v, want terminal result", events)
	}
}

// TestSubmitJournalOrdering pins WAL-first: every 202 is preceded by a
// durable Submitted record, so replay never misses an acknowledged job.
func TestSubmitJournalOrdering(t *testing.T) {
	dir := t.TempDir()
	s, jnl := journaledServer(t, dir, nil, Config{Workers: 1, QueueDepth: 8})
	// No Start: jobs stay queued, nothing else writes.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := genRequest(1)
	req.Bench = benchText(t, "c17")
	resp := postJSON(t, ts, "/v1/generate", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	id := decodeBody[submitResponse](t, resp).ID

	// The record is already on disk — no drain, no close needed.
	st, err := jnl.Replay()
	if err != nil {
		t.Fatal(err)
	}
	js := st.Jobs[id]
	if js == nil || js.Status != journal.StatusQueued || len(js.Payload) == 0 {
		t.Fatalf("journal state for %s = %+v, want queued with payload", id, js)
	}
	jnl.Close()
}
