package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"strings"

	"cghti/internal/artifact"
)

// ringReplicas is the number of virtual nodes each member contributes.
// 64 points per member keeps the ownership split within a few percent
// of even for small fleets while the whole ring stays a few KB.
const ringReplicas = 64

// ring is a consistent-hash ring over fleet member addresses, keyed by
// netlist fingerprint: every node configured with the same member set
// computes the same owner for a given submission, with no coordination,
// so identical jobs entering anywhere in the fleet converge on one
// owner's journal and dedupe there. Members hash to ringReplicas points
// each; a fingerprint is owned by the member whose point follows it on
// the ring. Immutable after construction.
type ring struct {
	self   string // this node's advertised address ("" = forward-only)
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	addr string
}

// normalizeAddr canonicalizes one member address so "127.0.0.1:7070",
// " 127.0.0.1:7070 " and "http://127.0.0.1:7070/" are the same member —
// ring agreement across nodes depends on every node hashing identical
// strings.
func normalizeAddr(addr string) string {
	addr = strings.TrimSpace(addr)
	addr = strings.TrimPrefix(addr, "http://")
	return strings.TrimRight(addr, "/")
}

// newRing builds the ring over self plus peers (deduplicated after
// normalization). An empty self is legal: the node forwards everything
// it does not fall back on, but owns nothing.
func newRing(self string, peers []string) *ring {
	self = normalizeAddr(self)
	seen := make(map[string]bool)
	var members []string
	add := func(addr string) {
		if addr == "" || seen[addr] {
			return
		}
		seen[addr] = true
		members = append(members, addr)
	}
	add(self)
	for _, p := range peers {
		add(normalizeAddr(p))
	}

	r := &ring{self: self, points: make([]ringPoint, 0, len(members)*ringReplicas)}
	for _, m := range members {
		for i := 0; i < ringReplicas; i++ {
			sum := sha256.Sum256([]byte(m + "#" + strconv.Itoa(i)))
			r.points = append(r.points, ringPoint{
				hash: binary.BigEndian.Uint64(sum[:8]),
				addr: m,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit collision between members is vanishingly unlikely but
		// must still order identically on every node.
		return r.points[a].addr < r.points[b].addr
	})
	return r
}

// owner returns the member owning fp: the first ring point at or after
// the fingerprint's hash, wrapping at the top. Empty ring (or the zero
// fingerprint, which carries no identity) owns nothing.
func (r *ring) owner(fp artifact.Fingerprint) string {
	if len(r.points) == 0 || fp.IsZero() {
		return ""
	}
	h := binary.BigEndian.Uint64(fp[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// members lists the distinct member addresses in ring-point order of
// first appearance, sorted for stable health output.
func (r *ring) members() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range r.points {
		if !seen[p.addr] {
			seen[p.addr] = true
			out = append(out, p.addr)
		}
	}
	sort.Strings(out)
	return out
}
