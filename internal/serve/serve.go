// Package serve is the long-running job daemon behind cmd/htserved: it
// accepts .bench generation and detection jobs over HTTP, runs them on
// a bounded worker pool with a backpressure-limited queue, and reports
// per-job results and metrics.
//
// Concurrency model: every job runs under its own scoped metrics
// registry (obs.NewScoped), so each job's report is an exact account of
// its own work even while other jobs run concurrently — the scoped
// registries mirror into the process default, which keeps /metrics
// whole-process totals intact. All jobs share one artifact cache, so a
// job resubmitting a netlist another job already processed hits warm
// artifacts.
//
// Lifecycle: Start launches the workers; Drain stops intake (submits
// get 503, /healthz flips to 503), lets running jobs finish until the
// drain context expires (then cancels them), marks still-queued jobs
// canceled, and returns a final whole-process report.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cghti/internal/artifact"
	"cghti/internal/journal"
	"cghti/internal/obs"
	"cghti/internal/sim"
)

// Server metrics live in the process default registry: the daemon's own
// bookkeeping is whole-process state, not per-job work.
var (
	cntAccepted   = obs.NewCounter("serve.jobs_accepted")
	cntRejected   = obs.NewCounter("serve.jobs_rejected")
	cntCompleted  = obs.NewCounter("serve.jobs_completed")
	cntFailed     = obs.NewCounter("serve.jobs_failed")
	cntCanceled   = obs.NewCounter("serve.jobs_canceled")
	cntPoisoned   = obs.NewCounter("serve.jobs_poisoned")
	cntRecovered  = obs.NewCounter("serve.recovered_jobs")
	cntIdemHits   = obs.NewCounter("serve.idempotent_hits")
	cntForwarded  = obs.NewCounter("serve.forwarded_jobs")
	cntFallbacks  = obs.NewCounter("serve.forward_fallbacks")
	gaugeQueued   = obs.NewGauge("serve.queue_depth")
	gaugeQueueCap = obs.NewGauge("serve.queue_capacity")
	gaugeRunning  = obs.NewGauge("serve.jobs_running")
	histHandler   = obs.NewHistogram("serve.handler_time")
	// histQueueWait is the process-wide accumulation of every job's
	// submit-to-start wait (scoped job registries mirror into it) — the
	// signal 429 Retry-After derivation reads.
	histQueueWait = obs.NewHistogram("serve.queue_wait")
	// histAttempts records each terminal job's attempt count, encoded
	// as milliseconds so the histogram's quantiles read directly as
	// attempts (p99_ms == 99th-percentile attempts).
	histAttempts = obs.NewHistogram("serve.job_attempts")
)

// Defaults applied by Config.withDefaults.
const (
	DefaultWorkers      = 2
	DefaultQueueDepth   = 8
	DefaultJobTimeout   = 2 * time.Minute
	DefaultRetainJobs   = 256
	DefaultMaxAttempts  = 3
	DefaultRetryBase    = 500 * time.Millisecond
	DefaultCompactEvery = 1024
	// DefaultForwardTimeout bounds one proxied submission to the owning
	// fleet node; past it the submit falls back to local execution.
	DefaultForwardTimeout = 10 * time.Second
	// maxRetryBackoff caps the recovery backoff however many attempts
	// a job has accumulated.
	maxRetryBackoff = 30 * time.Second
)

// Config parameterizes the daemon.
type Config struct {
	// Workers is the job worker-pool size (DefaultWorkers if 0): at
	// most this many jobs run concurrently.
	Workers int
	// QueueDepth bounds the backlog of accepted-but-not-started jobs
	// (DefaultQueueDepth if 0). A submit that finds the queue full is
	// rejected with 429 and a Retry-After header — backpressure instead
	// of unbounded memory growth.
	QueueDepth int
	// JobTimeout caps each job's run time (DefaultJobTimeout if 0). A
	// request may ask for less via timeout_ms but never more.
	JobTimeout time.Duration
	// JobWorkers is the per-job simulation/ATPG goroutine budget
	// (1 if 0). Kept small by default: the pool's concurrency comes
	// from running jobs in parallel, not from fanning out inside one.
	JobWorkers int
	// Cache is the artifact store shared by every job (a fresh
	// memory-only cache if nil).
	Cache *artifact.Cache
	// RetainJobs bounds how many finished jobs stay queryable
	// (DefaultRetainJobs if 0); the oldest finished jobs are forgotten
	// first.
	RetainJobs int
	// Journal is the daemon's write-ahead log (nil disables
	// durability): every accepted job is journaled and fsynced before
	// the 202, and Recover replays it after a crash.
	Journal *journal.Journal
	// MaxAttempts bounds how many times a crash-interrupted job is
	// restarted before being poisoned (DefaultMaxAttempts if 0).
	MaxAttempts int
	// RetryBase is the first recovery retry's backoff, doubling per
	// prior attempt (DefaultRetryBase if 0).
	RetryBase time.Duration
	// CompactEvery triggers a background journal compaction after this
	// many terminal jobs (DefaultCompactEvery if 0).
	CompactEvery int
	// Peers lists the other fleet nodes' HTTP addresses (host:port or
	// http:// URLs). Non-empty enables fleet mode: submissions are
	// consistent-hash sharded across the ring (this node plus Peers),
	// and the artifact cache gains a remote tier that fetches entries
	// the peers already computed.
	Peers []string
	// Advertise is this node's own address as the Peers reach it; it
	// places the node on the ring. Empty with Peers set is legal: the
	// node owns no shard and forwards every submission (falling back to
	// local execution when the owner is unreachable).
	Advertise string
	// ForwardTimeout bounds one proxied submission
	// (DefaultForwardTimeout if 0).
	ForwardTimeout time.Duration
	// SimBatchWords is the shared simulation engine width in 64-pattern
	// words: every job's pattern blocks are multiplexed onto one
	// process-wide batching service (sim.Batcher), so concurrent jobs
	// targeting the same circuit structure pack into the idle bit-lanes
	// of one engine instead of each running a mostly-empty one. 0 uses
	// sim.DefaultEngineWords; negative disables batching (each block
	// gets an exclusive pooled engine, the pre-batching behavior).
	// Results are bit-identical either way.
	SimBatchWords int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = DefaultJobTimeout
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.Cache == nil {
		c.Cache = artifact.NewCache(0, 0)
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = DefaultRetainJobs
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.RetryBase <= 0 {
		c.RetryBase = DefaultRetryBase
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = DefaultCompactEvery
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = DefaultForwardTimeout
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
	// StatusPoisoned is terminal for a job that kept crashing the
	// daemon: after MaxAttempts recovery restarts it is parked instead
	// of re-enqueued, so one poisonous request cannot crash-loop the
	// process forever.
	StatusPoisoned Status = "poisoned"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	switch s {
	case StatusDone, StatusFailed, StatusCanceled, StatusPoisoned:
		return true
	}
	return false
}

// Job is one unit of accepted work. Fields are guarded by the server
// mutex; handlers read them only through snapshotLocked.
type Job struct {
	ID        string
	Kind      string // "generate" | "detect"
	Status    Status
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Err       string
	// Key is the client-supplied Idempotency-Key ("" if none): a
	// resubmit carrying the same key returns this job instead of
	// running a duplicate.
	Key string
	// Attempts counts execution starts, across crashes: a job
	// journal-replayed after a restart resumes its count.
	Attempts int
	// NotBefore delays a recovered job's restart (exponential backoff
	// per prior attempt); zero means run immediately.
	NotBefore time.Time
	// ResultFP is the sha256 fingerprint of the marshaled result, set
	// on StatusDone. It survives restarts via the journal even though
	// the result body itself does not.
	ResultFP string
	// Result is the kind-specific outcome (GenerateResult or
	// DetectResult), set on StatusDone.
	Result any
	// Report is the job's observability record: its span trace plus the
	// exact metric account of its own work (scoped registry snapshot,
	// no delta against other jobs' concurrent increments) — including
	// this job's per-stage, queue-wait and end-to-end latency
	// histograms, isolated from concurrent jobs by the same mirroring
	// rule as the counters.
	Report *obs.Report

	// feed is the job's progress-event hub, streamed by
	// GET /v1/jobs/{id}/events; created at submit so subscribers can
	// attach while the job is still queued.
	feed *eventFeed

	run    runFunc
	cancel context.CancelFunc
}

// runFunc is a job's executable body.
type runFunc func(ctx context.Context, reg *obs.Registry, trace *obs.Trace, sink obs.Sink) (any, error)

// Server is the job daemon. Construct with New, wire Handler into an
// http.Server, call Start, and Drain on shutdown.
type Server struct {
	cfg      Config
	queue    chan *Job
	drainCh  chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string          // finished job IDs, oldest first, for retention
	idem     map[string]string // Idempotency-Key -> job ID

	// terminalSince counts terminal jobs since the last journal
	// compaction (guarded by mu); compacting single-flights the
	// background compaction goroutine.
	terminalSince int
	compacting    atomic.Bool
	recovered     atomic.Bool

	nextID  atomic.Int64
	started time.Time
	snap0   obs.Snapshot

	// batcher is the process-wide batching simulation service every
	// job's context carries (nil when Config.SimBatchWords < 0).
	batcher *sim.Batcher

	// ring and forward are the fleet state (nil outside fleet mode):
	// the consistent-hash ownership ring and the HTTP client submissions
	// are proxied with.
	ring    *ring
	forward *http.Client
}

// New builds a Server; no goroutines run until Start.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	gaugeQueueCap.Set(int64(cfg.QueueDepth))
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *Job, cfg.QueueDepth),
		drainCh: make(chan struct{}),
		jobs:    make(map[string]*Job),
		idem:    make(map[string]string),
		started: time.Now(),
		snap0:   obs.Default().Snapshot(),
	}
	if cfg.SimBatchWords >= 0 {
		s.batcher = sim.NewBatcher(sim.BatcherConfig{
			EngineWords: cfg.SimBatchWords, // 0 -> sim.DefaultEngineWords
			Workers:     cfg.JobWorkers,
		})
	}
	if len(cfg.Peers) > 0 {
		s.ring = newRing(cfg.Advertise, cfg.Peers)
		s.forward = &http.Client{Timeout: cfg.ForwardTimeout}
		// The shared cache learns to ask the same peers for artifacts
		// they already computed — the fleet's third cache tier.
		cfg.Cache.SetRemote(artifact.NewRemote(cfg.Peers, artifact.RemoteOptions{}))
	}
	return s
}

// Cache returns the artifact store shared by every job.
func (s *Server) Cache() *artifact.Cache { return s.cfg.Cache }

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Priority check so a worker that becomes free during a drain
		// does not pick up more queued work.
		select {
		case <-s.drainCh:
			return
		default:
		}
		select {
		case <-s.drainCh:
			return
		case j := <-s.queue:
			gaugeQueued.Set(int64(len(s.queue)))
			s.runJob(j)
		}
	}
}

// runJob executes one job under its own scoped registry, trace, and
// deadline. The job's report snapshots the scoped registry — an exact
// per-job account even with other jobs running concurrently — and the
// queue-wait and submit-to-done latencies are observed into the same
// scoped registry, so they appear in the per-job report and (via the
// mirror) in the whole-process histograms.
func (s *Server) runJob(j *Job) {
	// Honor a recovered job's retry backoff; a drain during the wait
	// cancels it like any other queued job.
	if wait := time.Until(j.NotBefore); wait > 0 {
		select {
		case <-time.After(wait):
		case <-s.drainCh:
			s.cancelQueued(j)
			return
		}
	}

	reg := obs.NewScoped(nil)
	trace := obs.NewTrace()
	ctx, cancel := context.WithCancel(context.Background())
	ctx = obs.WithRegistry(ctx, reg)
	// Route the job's simulation blocks through the shared batching
	// service, keyed by job ID for fair-share packing. Canceling the job
	// context withdraws its still-queued blocks from the batcher.
	if s.batcher != nil {
		ctx = sim.WithService(ctx, s.batcher)
		ctx = sim.WithJobKey(ctx, j.ID)
	}

	s.mu.Lock()
	if j.Status != StatusQueued { // canceled while queued
		s.mu.Unlock()
		cancel()
		return
	}
	j.Status = StatusRunning
	j.Started = time.Now()
	j.Attempts++
	j.cancel = cancel
	attempt := j.Attempts
	running := s.countRunningLocked()
	s.mu.Unlock()
	s.journalAppend(journal.Record{Type: journal.EvStarted, Job: j.ID, Attempt: attempt})
	reg.Histogram("serve.queue_wait").Observe(j.Started.Sub(j.Submitted))
	gaugeRunning.Set(running)
	defer cancel()

	result, err := j.run(ctx, reg, trace, j.feed)

	// Observe the end-to-end latency before snapshotting, so the job's
	// own report carries it.
	finished := time.Now()
	reg.Histogram("serve.job_time." + j.Kind).Observe(finished.Sub(j.Submitted))
	rep := obs.NewReport("htserved."+j.Kind, trace, reg.Snapshot())
	rep.Extra = map[string]any{"job_id": j.ID}

	s.mu.Lock()
	j.Finished = finished
	j.Report = rep
	j.cancel = nil
	var rec journal.Record
	switch {
	case err == nil:
		j.Status = StatusDone
		j.Result = result
		j.ResultFP = resultFingerprint(result)
		rec = journal.Record{Type: journal.EvCompleted, Job: j.ID, Result: j.ResultFP}
		cntCompleted.Inc()
	case context.Cause(ctx) == context.Canceled && s.draining.Load():
		j.Status = StatusCanceled
		j.Err = "canceled: server draining"
		rec = journal.Record{Type: journal.EvCanceled, Job: j.ID, Err: j.Err}
		cntCanceled.Inc()
	default:
		j.Status = StatusFailed
		j.Err = err.Error()
		rec = journal.Record{Type: journal.EvFailed, Job: j.ID, Err: j.Err}
		cntFailed.Inc()
	}
	status, errMsg := j.Status, j.Err
	s.noteFinishedLocked(j)
	running = s.countRunningLocked()
	s.mu.Unlock()
	s.journalAppend(rec)
	histAttempts.Observe(time.Duration(attempt) * time.Millisecond)
	gaugeRunning.Set(running)
	// Terminate the job's SSE streams with the final result event.
	j.feed.closeFinal(status, errMsg)
	s.maybeCompact()
}

// cancelQueued marks a never-started job canceled (drain path).
func (s *Server) cancelQueued(j *Job) {
	s.mu.Lock()
	if j.Status.Terminal() {
		s.mu.Unlock()
		return
	}
	j.Status = StatusCanceled
	j.Err = "canceled: server draining"
	j.Finished = time.Now()
	s.noteFinishedLocked(j)
	s.mu.Unlock()
	cntCanceled.Inc()
	s.journalAppend(journal.Record{Type: journal.EvCanceled, Job: j.ID, Err: j.Err})
	j.feed.closeFinal(StatusCanceled, j.Err)
}

// resultFingerprint hashes the marshaled result so replays and
// idempotent resubmits can be checked for identical outcomes without
// persisting result bodies.
func resultFingerprint(result any) string {
	data, err := json.Marshal(result)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// journalAppend writes one lifecycle record, when a journal is
// configured. Append failures are counted by the journal itself and do
// not fail the job: durability degrades, serving does not.
func (s *Server) journalAppend(rec journal.Record) {
	if s.cfg.Journal != nil {
		s.cfg.Journal.Append(rec)
	}
}

// maybeCompact kicks off a background journal compaction once enough
// terminal jobs have accumulated, keeping only the jobs the daemon
// still retains. Single-flighted; skipped while draining (Drain's
// final state is compacted by the next boot's Recover).
func (s *Server) maybeCompact() {
	if s.cfg.Journal == nil || s.draining.Load() {
		return
	}
	s.mu.Lock()
	due := s.terminalSince >= s.cfg.CompactEvery
	if due {
		s.terminalSince = 0
	}
	s.mu.Unlock()
	if !due || !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		s.cfg.Journal.Compact(s.keepInJournal)
	}()
}

// keepInJournal reports whether a terminal job should survive journal
// compaction: only while the daemon still retains it.
func (s *Server) keepInJournal(js *journal.JobState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.jobs[js.ID]
	return ok
}

func (s *Server) countRunningLocked() int64 {
	var n int64
	for _, j := range s.jobs {
		if j.Status == StatusRunning {
			n++
		}
	}
	return n
}

// noteFinishedLocked records a finished job for retention trimming and
// forgets the oldest finished jobs beyond the cap. Evicted jobs release
// their idempotency keys: a key outliving its job would dedupe against
// state the daemon can no longer report.
func (s *Server) noteFinishedLocked(j *Job) {
	s.finished = append(s.finished, j.ID)
	s.terminalSince++
	for len(s.finished) > s.cfg.RetainJobs {
		old := s.finished[0]
		if evicted, ok := s.jobs[old]; ok && evicted.Key != "" && s.idem[evicted.Key] == old {
			delete(s.idem, evicted.Key)
		}
		delete(s.jobs, old)
		s.finished = s.finished[1:]
	}
}

// submit registers and enqueues a job, or rejects it when the daemon is
// draining (ErrDraining) or the queue is full (ErrQueueFull).
//
// Durability ordering: the job is journaled (EvSubmitted, fsynced)
// BEFORE it is enqueued, so any job a client saw accepted survives a
// crash. The queue-full fast path is checked before journaling — a 429
// storm must not grow the WAL — and the (rare) race where the queue
// fills between that check and the send is journaled as an immediate
// cancel so replay stays consistent with what the client was told.
//
// key is the client's Idempotency-Key ("" if none): a resubmit carrying
// a known key returns the original job with replayed=true instead of
// enqueuing a duplicate. payload is the marshaled request body recorded
// in the journal so Recover can rebuild the job's run closure.
func (s *Server) submit(kind, key string, payload []byte, run runFunc) (j *Job, replayed bool, err error) {
	if s.draining.Load() {
		return nil, false, ErrDraining
	}
	s.mu.Lock()
	if key != "" {
		if id, ok := s.idem[key]; ok {
			j := s.jobs[id]
			s.mu.Unlock()
			cntIdemHits.Inc()
			return j, true, nil
		}
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		cntRejected.Inc()
		return nil, false, ErrQueueFull
	}
	j = &Job{
		ID:        fmt.Sprintf("job-%d", s.nextID.Add(1)),
		Kind:      kind,
		Status:    StatusQueued,
		Submitted: time.Now(),
		Key:       key,
		feed:      newEventFeed(),
		run:       run,
	}
	s.jobs[j.ID] = j
	if key != "" {
		s.idem[key] = j.ID
	}
	s.mu.Unlock()

	if s.cfg.Journal != nil {
		rec := journal.Record{
			Type:    journal.EvSubmitted,
			Job:     j.ID,
			Kind:    kind,
			Key:     key,
			Payload: payload,
		}
		if jerr := s.cfg.Journal.Append(rec); jerr != nil {
			// Could not make the accept durable: refuse the job rather
			// than hand out an ID a crash would forget.
			s.forget(j)
			return nil, false, fmt.Errorf("serve: journal submit: %w", jerr)
		}
	}

	select {
	case s.queue <- j:
		cntAccepted.Inc()
		gaugeQueued.Set(int64(len(s.queue)))
		return j, false, nil
	default:
		// Queue filled between the pre-check and the send. The submit is
		// already durable, so record its demise too.
		s.forget(j)
		s.journalAppend(journal.Record{Type: journal.EvCanceled, Job: j.ID, Err: "rejected: queue full"})
		cntRejected.Inc()
		return nil, false, ErrQueueFull
	}
}

// forget unregisters a job that was never accepted.
func (s *Server) forget(j *Job) {
	s.mu.Lock()
	delete(s.jobs, j.ID)
	if j.Key != "" && s.idem[j.Key] == j.ID {
		delete(s.idem, j.Key)
	}
	s.mu.Unlock()
}

// Sentinel submit failures, mapped to HTTP statuses by the handlers.
var (
	ErrQueueFull = fmt.Errorf("serve: job queue full")
	ErrDraining  = fmt.Errorf("serve: server draining")
)

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the pool down: intake stops immediately
// (submits and /healthz return 503), running jobs keep going until ctx
// expires (then their contexts are canceled), never-started jobs are
// marked canceled, and the returned report records the whole process's
// work since New. Safe to call once; subsequent calls return nil.
func (s *Server) Drain(ctx context.Context) *obs.Report {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(s.drainCh)

	// Wait for in-flight jobs; cancel them if the drain budget expires.
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if j.Status == StatusRunning && j.cancel != nil {
				j.cancel()
			}
		}
		s.mu.Unlock()
		<-done
	}

	// All workers have exited; no job can submit more blocks, so the
	// shared simulation service can release its engines.
	if s.batcher != nil {
		s.batcher.Close()
	}

	// No worker is pulling anymore; everything left in the queue never
	// started.
	for {
		select {
		case j := <-s.queue:
			s.cancelQueued(j)
		default:
			gaugeQueued.Set(0)
			gaugeRunning.Set(0)
			rep := obs.NewReport("htserved", nil, obs.Default().Snapshot().Delta(s.snap0))
			rep.Extra = map[string]any{
				"uptime":         time.Since(s.started).String(),
				"jobs_accepted":  cntAccepted.Value(),
				"jobs_completed": cntCompleted.Value(),
				"jobs_failed":    cntFailed.Value(),
				"jobs_canceled":  cntCanceled.Value(),
				"jobs_rejected":  cntRejected.Value(),
			}
			return rep
		}
	}
}

// Handler returns the daemon's HTTP mux (see http.go for the routes).
func (s *Server) Handler() http.Handler { return s.routes() }
