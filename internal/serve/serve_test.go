package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cghti/internal/bench"
	"cghti/internal/chaos"
	"cghti/internal/gen"
	"cghti/internal/stage"
)

// benchText renders a catalog circuit as .bench source for request
// bodies.
func benchText(t *testing.T, name string) string {
	t.Helper()
	n, err := gen.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := bench.Write(&sb, n); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// genRequest is a small, fast generate job on c17.
func genRequest(seed int64) GenerateRequest {
	return GenerateRequest{
		Bench:           "", // filled by callers with benchText
		Name:            "c17",
		Seed:            seed,
		Instances:       1,
		MinTriggerNodes: 2,
		RareVectors:     200,
		RareThreshold:   0.4,
	}
}

// pollJob polls /v1/jobs/{id} until the job reaches a terminal status.
func pollJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET /v1/jobs/%s = %d", id, resp.StatusCode)
		}
		view := decodeBody[jobView](t, resp)
		if Status(view.Status).Terminal() {
			return view
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal status", id)
	return jobView{}
}

// TestGenerateJobLifecycle submits a c17 generation job over HTTP,
// polls it to completion, and checks the result and the per-job report.
func TestGenerateJobLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := genRequest(1)
	req.Bench = benchText(t, "c17")
	resp := postJSON(t, ts, "/v1/generate", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	sub := decodeBody[submitResponse](t, resp)
	if sub.ID == "" {
		t.Fatal("submit response has no job id")
	}

	view := pollJob(t, ts, sub.ID)
	if view.Status != StatusDone {
		t.Fatalf("job status = %s (err %q), want done", view.Status, view.Error)
	}
	if view.Report == nil {
		t.Fatal("finished job has no report")
	}
	if v := view.Report.Counters["trojan.instances_inserted"]; v != 1 {
		t.Fatalf("report trojan.instances_inserted = %d, want 1", v)
	}
	if v := view.Report.Counters["rare.extractions"]; v != 1 {
		t.Fatalf("report rare.extractions = %d, want 1", v)
	}
	// The per-job report carries this job's latency distributions: one
	// queue wait, one end-to-end latency, one rare-extract stage run.
	for _, name := range []string{"serve.queue_wait", "serve.job_time.generate", "pipeline.stage_time.rare_extract"} {
		h, ok := view.Report.Histograms[name]
		if !ok {
			t.Fatalf("report is missing histogram %s", name)
		}
		if h.Count != 1 {
			t.Fatalf("report histogram %s count = %d, want 1", name, h.Count)
		}
	}
	if h := view.Report.Histograms["serve.job_time.generate"]; h.P50NS <= 0 || h.SumNS <= 0 {
		t.Fatalf("job_time histogram has no mass: %+v", h)
	}

	// Result round-trips through JSON as a map; re-decode into the
	// typed form.
	raw, err := json.Marshal(view.Result)
	if err != nil {
		t.Fatal(err)
	}
	var res GenerateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmarks) != 1 {
		t.Fatalf("result has %d benchmarks, want 1", len(res.Benchmarks))
	}
	b := res.Benchmarks[0]
	if b.Trigger == "" || !strings.Contains(b.Bench, b.Trigger) {
		t.Fatalf("benchmark text does not contain its trigger net %q", b.Trigger)
	}

	// The infected netlist must itself be a valid detect input: close
	// the loop with a detect job on the same server.
	dresp := postJSON(t, ts, "/v1/detect", DetectRequest{
		Golden:   req.Bench,
		Infected: b.Bench,
		Trigger:  b.Trigger,
		Scheme:   "random",
		Patterns: 2000,
		Seed:     1,
	})
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("detect submit status = %d, want 202", dresp.StatusCode)
	}
	dsub := decodeBody[submitResponse](t, dresp)
	dview := pollJob(t, ts, dsub.ID)
	if dview.Status != StatusDone {
		t.Fatalf("detect job status = %s (err %q), want done", dview.Status, dview.Error)
	}
}

// TestSubmitValidation pins that malformed requests are the client's
// 400 at submit time, not failed jobs discovered by polling.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body any
	}{
		{"bad netlist", GenerateRequest{Bench: "this is not a bench file"}},
		{"bad payload", func() GenerateRequest {
			r := genRequest(1)
			r.Bench = benchText(t, "c17")
			r.Payload = "explode"
			return r
		}()},
		{"unknown field", map[string]any{"bench": "x", "bogus": true}},
		{"bad detect trigger", DetectRequest{
			Golden:   benchText(t, "c17"),
			Infected: benchText(t, "c17"),
			Trigger:  "no_such_net",
		}},
	}
	for _, tc := range cases {
		path := "/v1/generate"
		if _, ok := tc.body.(DetectRequest); ok {
			path = "/v1/detect"
		}
		resp := postJSON(t, ts, path, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestQueueBackpressure pins the 429 path deterministically: the
// server is never Started, so nothing drains the queue and the
// QueueDepth+1-th submit must be rejected with Retry-After set, without
// registering the job.
func TestQueueBackpressure(t *testing.T) {
	const depth = 3
	s := New(Config{QueueDepth: depth}) // no Start: queue only fills
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := genRequest(1)
	body.Bench = benchText(t, "c17")
	ids := make([]string, 0, depth)
	for i := 0; i < depth; i++ {
		resp := postJSON(t, ts, "/v1/generate", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
		ids = append(ids, decodeBody[submitResponse](t, resp).ID)
	}

	resp := postJSON(t, ts, "/v1/generate", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response is missing Retry-After")
	}

	// The rejected job must not be queryable; the accepted ones must be.
	s.mu.Lock()
	registered := len(s.jobs)
	s.mu.Unlock()
	if registered != depth {
		t.Fatalf("registered jobs = %d, want %d (rejected submit leaked)", registered, depth)
	}
	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		view := decodeBody[jobView](t, resp)
		if view.Status != StatusQueued {
			t.Fatalf("job %s status = %s, want queued", id, view.Status)
		}
	}
}

// TestGracefulDrain pins the SIGTERM path: a drain flips /healthz and
// submits to 503, lets a running job finish within the grace budget,
// cancels a stalled one when the budget expires, marks never-started
// jobs canceled, and returns a final report.
func TestGracefulDrain(t *testing.T) {
	// Stall every rare-extract hit so jobs stay running until canceled.
	chaos.Install(chaos.Spec{
		Stage: stage.RareExtract, Worker: chaos.AnyWorker,
		Kind: chaos.Delay, Delay: 50 * time.Millisecond,
	})
	defer chaos.Uninstall()

	s := New(Config{Workers: 1, QueueDepth: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := genRequest(1)
	body.Bench = benchText(t, "c17")
	// First job occupies the worker; the second waits in the queue.
	var ids []string
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts, "/v1/generate", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
		ids = append(ids, decodeBody[submitResponse](t, resp).ID)
	}

	// Wait until the first job is actually running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		running := s.jobs[ids[0]].Status == StatusRunning
		s.mu.Unlock()
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain with an immediate budget: the running job is canceled, the
	// queued one never starts.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	rep := s.Drain(drainCtx)
	if rep == nil {
		t.Fatal("first Drain returned no report")
	}
	if s.Drain(context.Background()) != nil {
		t.Fatal("second Drain must return nil")
	}

	// Intake is closed.
	resp := postJSON(t, ts, "/v1/generate", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz = %d, want 503", hresp.StatusCode)
	}

	for _, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		view := decodeBody[jobView](t, resp)
		if view.Status != StatusCanceled {
			t.Fatalf("job %s status = %s (err %q), want canceled", id, view.Status, view.Error)
		}
	}
	if rep.Extra == nil || rep.Extra["jobs_canceled"] == nil {
		t.Fatal("drain report is missing job accounting")
	}
}

// TestDrainFinishesFastJobs pins the happy drain: jobs that complete
// within the budget are done, not canceled.
func TestDrainFinishesFastJobs(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := genRequest(2)
	body.Bench = benchText(t, "c17")
	resp := postJSON(t, ts, "/v1/generate", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	id := decodeBody[submitResponse](t, resp).ID

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if rep := s.Drain(drainCtx); rep == nil {
		t.Fatal("Drain returned no report")
	}
	rg, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	view := decodeBody[jobView](t, rg)
	if view.Status != StatusDone {
		t.Fatalf("job status after graceful drain = %s (err %q), want done", view.Status, view.Error)
	}
}

// TestMetricsJSONEndpoint pins the legacy JSON body at /metrics.json:
// the pre-Prometheus shape (process counters plus queue occupancy),
// with an explicit JSON Content-Type, so consumers of the original
// /metrics endpoint keep working after the format switch.
func TestMetricsJSONEndpoint(t *testing.T) {
	s := New(Config{QueueDepth: 5})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/metrics.json Content-Type = %q, want application/json", ct)
	}
	m := decodeBody[map[string]any](t, resp)
	q, ok := m["queue"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing queue section: %v", m)
	}
	if int(q["capacity"].(float64)) != 5 {
		t.Fatalf("queue capacity = %v, want 5", q["capacity"])
	}
	if _, ok := m["counters"]; !ok {
		t.Fatal("metrics missing counters section")
	}
}

// TestHealthzSaturation pins the enriched probe body: queue occupancy
// and busy workers, so probes can tell "idle" from "saturated". The
// server is never Started, so queued jobs stay queued deterministically.
func TestHealthzSaturation(t *testing.T) {
	s := New(Config{Workers: 3, QueueDepth: 4}) // no Start
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := genRequest(1)
	body.Bench = benchText(t, "c17")
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts, "/v1/generate", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h := decodeBody[map[string]any](t, resp)
	if h["status"] != "ok" {
		t.Fatalf("healthz status = %v, want ok", h["status"])
	}
	q := h["queue"].(map[string]any)
	if int(q["depth"].(float64)) != 2 || int(q["capacity"].(float64)) != 4 {
		t.Fatalf("healthz queue = %v, want depth 2 capacity 4", q)
	}
	w := h["workers"].(map[string]any)
	if int(w["busy"].(float64)) != 0 || int(w["total"].(float64)) != 3 {
		t.Fatalf("healthz workers = %v, want busy 0 total 3", w)
	}
}

// TestJobRetention pins that only RetainJobs finished jobs stay
// queryable, oldest forgotten first.
func TestJobRetention(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, RetainJobs: 2})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bench := benchText(t, "c17")
	var ids []string
	for i := 0; i < 4; i++ {
		body := genRequest(int64(i + 1))
		body.Bench = bench
		resp := postJSON(t, ts, "/v1/generate", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, resp.StatusCode)
		}
		id := decodeBody[submitResponse](t, resp).ID
		ids = append(ids, id)
		pollJob(t, ts, id)
	}
	// The two oldest are forgotten, the two newest remain.
	for i, id := range ids {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusOK
		if i < 2 {
			want = http.StatusNotFound
		}
		if resp.StatusCode != want {
			t.Fatalf("job %d (%s) status = %d, want %d", i, id, resp.StatusCode, want)
		}
	}
}

// TestConcurrentJobHistogramIsolation extends the PR-5 concurrent
// isolation property to histograms: jobs running at the same time each
// report exactly their own latency observations — one queue wait, one
// end-to-end latency, one rare-extract run — with no bleed across the
// concurrently running jobs' scoped registries. Distinct seeds keep
// every job's pipeline out of the shared artifact cache, so each runs
// its stages for real.
func TestConcurrentJobHistogramIsolation(t *testing.T) {
	const jobs = 3
	s := New(Config{Workers: jobs, QueueDepth: jobs})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bench := benchText(t, "c17")
	ids := make([]string, jobs)
	for i := range ids {
		body := genRequest(int64(100 + i))
		body.Bench = bench
		resp := postJSON(t, ts, "/v1/generate", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
		ids[i] = decodeBody[submitResponse](t, resp).ID
	}
	for i, id := range ids {
		view := pollJob(t, ts, id)
		if view.Status != StatusDone {
			t.Fatalf("job %d status = %s (err %q), want done", i, view.Status, view.Error)
		}
		for _, name := range []string{"serve.queue_wait", "serve.job_time.generate", "pipeline.stage_time.rare_extract"} {
			if h := view.Report.Histograms[name]; h.Count != 1 {
				t.Fatalf("job %d histogram %s count = %d, want 1 (concurrent bleed?)", i, name, h.Count)
			}
		}
	}
}

// TestSharedCacheAcrossJobs pins that two identical jobs share
// artifacts: the second job's pipeline reports cached stages.
func TestSharedCacheAcrossJobs(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.Start()
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := genRequest(3)
	body.Bench = benchText(t, "c17")
	var views []jobView
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts, "/v1/generate", body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, resp.StatusCode)
		}
		views = append(views, pollJob(t, ts, decodeBody[submitResponse](t, resp).ID))
	}
	for i, v := range views {
		if v.Status != StatusDone {
			t.Fatalf("job %d status = %s (err %q)", i, v.Status, v.Error)
		}
	}
	raw, err := json.Marshal(views[1].Result)
	if err != nil {
		t.Fatal(err)
	}
	var res GenerateResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.CachedStages) == 0 {
		t.Fatal("second identical job hit no cached stages")
	}
}
