package sim

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"cghti/internal/netlist"
	"cghti/internal/obs"
)

// Batcher is the multiplexing Service the serving daemon mounts
// process-wide: pattern blocks from different jobs that target the same
// compiled program (the same structural fingerprint — the common case
// when many small jobs hit the same base circuits) are packed side by
// side into the word range of one wide engine and simulated together,
// so the idle bit-lanes a small exclusive engine would waste carry
// other jobs' patterns instead.
//
// Scheduling is fair-share: each engine cycle packs at most one queued
// block per job key (sim.WithJobKey; the daemon uses the job ID), in
// FIFO order, until the engine is full — a huge job streams its blocks
// one cycle at a time while small jobs keep landing beside it.
//
// Cancellation is cooperative withdrawal: a block whose context expires
// while still queued is removed from the queue and its Simulate returns
// ctx.Err(); once a dispatcher has taken a block its Fill/Read run to
// completion (they touch caller-owned state) and Simulate waits for
// them.
//
// Bit-identity: a block's Fill and Read see exactly its own word window
// through the Block view, every word is computed by the same compiled
// kernel sequence wherever it lands in the engine, and neighbouring
// lanes (other jobs' patterns, or stale data) are unreachable from the
// view — so results are byte-identical to the exclusive path for any
// packing arrangement. Request.Workers is ignored on the batched path;
// the shared engine runs with the batcher's own worker budget, which
// never changes results.
type Batcher struct {
	engineWords int
	workers     int

	mu     sync.Mutex
	closed bool
	progs  map[*Program]*progState
	memo   map[*netlist.Netlist]*netMemo
	wg     sync.WaitGroup
}

// Process-wide utilization metrics for the batching service, exported
// through the default registry like the shared-program counters:
// batch_fill over batch_capacity is the lane-fill ratio, block_wait the
// queue latency a block saw before dispatch.
var (
	batchFill     = obs.Default().Counter("sim.batch_fill")
	batchCapacity = obs.Default().Counter("sim.batch_capacity")
	batchRuns     = obs.Default().Counter("sim.batch_runs")
	blockWait     = obs.Default().Histogram("sim.block_wait")
)

// silentMeters swallow the shared engines' own accounting: the batcher
// attributes simulated vectors per block to each block's registry
// instead (a shared run's full 64*EngineWords capacity would otherwise
// land in the process totals even when half the lanes were idle).
var silentMeters = newMeters(obs.NewRegistry())

// DefaultEngineWords is the shared engine width when BatcherConfig
// leaves it 0: 64 words = 4096 patterns per run, room for e.g. four
// 16-word rare-extraction blocks side by side.
const DefaultEngineWords = 64

// memoLimit bounds the netlist -> program memo. Past it the memo is
// dropped wholesale; correctness is unaffected, the next submit simply
// re-resolves (a registry hit).
const memoLimit = 1024

// BatcherConfig parameterizes NewBatcher.
type BatcherConfig struct {
	// EngineWords is the shared engine width in 64-pattern words
	// (DefaultEngineWords if 0). Requests wider than this fall back to
	// the exclusive pooled path — they could never pack beside anything.
	EngineWords int
	// Workers is the word-shard budget for each shared engine run
	// (1 = serial, 0 = GOMAXPROCS).
	Workers int
}

// NewBatcher builds a batching simulation service. Close it when done.
func NewBatcher(cfg BatcherConfig) *Batcher {
	if cfg.EngineWords <= 0 {
		cfg.EngineWords = DefaultEngineWords
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	return &Batcher{
		engineWords: cfg.EngineWords,
		workers:     cfg.Workers,
		progs:       make(map[*Program]*progState),
		memo:        make(map[*netlist.Netlist]*netMemo),
	}
}

// netMemo caches the (program, slot) resolution for one netlist
// pointer, with the same shape guard the engine pool uses against
// in-place mutation. Each entry owns one program reference.
type netMemo struct {
	gates, edges int
	prog         *Program
	slot         []int32
}

// progState is the per-program batching state: one FIFO queue and one
// lazily built wide engine per compiled program. The engine (once
// built) owns a program reference; the bare prog pointer does not.
type progState struct {
	prog  *Program
	eng   *Packed // engineWords wide; lease rows ARE program rows
	queue []*batchItem
	busy  bool // a dispatcher goroutine is draining the queue
}

// batchItem is one queued block.
type batchItem struct {
	req    *Request
	slot   []int32 // request gate IDs -> program rows (nil = identity)
	jobKey string
	reg    *obs.Registry
	enq    time.Time
	taken  bool // dispatched; no longer withdrawable
	done   chan error
}

var errBatcherClosed = fmt.Errorf("sim: batcher is closed")

// Simulate implements Service.
func (bt *Batcher) Simulate(ctx context.Context, req *Request) error {
	if req.Words < 1 {
		return fmt.Errorf("sim: batch request words must be >= 1, got %d", req.Words)
	}
	if req.Words > bt.engineWords {
		return Exclusive{}.Simulate(ctx, req)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	bt.mu.Lock()
	if bt.closed {
		bt.mu.Unlock()
		return errBatcherClosed
	}
	prog, slot, err := bt.resolveLocked(req.Netlist)
	if err != nil {
		bt.mu.Unlock()
		return err
	}
	ps := bt.progs[prog]
	if ps == nil {
		ps = &progState{prog: prog}
		bt.progs[prog] = ps
	}
	item := &batchItem{
		req:    req,
		slot:   slot,
		jobKey: JobKeyFor(ctx),
		reg:    obs.FromContext(ctx),
		enq:    time.Now(),
		done:   make(chan error, 1),
	}
	ps.queue = append(ps.queue, item)
	if !ps.busy {
		ps.busy = true
		bt.wg.Add(1)
		go bt.dispatch(ps)
	}
	bt.mu.Unlock()

	select {
	case err := <-item.done:
		return err
	case <-ctx.Done():
		// Withdraw if still queued; a taken block must finish (its Fill
		// and Read touch caller-owned state).
		bt.mu.Lock()
		if !item.taken {
			for i, it := range ps.queue {
				if it == item {
					ps.queue = append(ps.queue[:i], ps.queue[i+1:]...)
					break
				}
			}
			bt.mu.Unlock()
			return ctx.Err()
		}
		bt.mu.Unlock()
		return <-item.done
	}
}

// resolveLocked maps a netlist to its shared program and slot through
// the memo. Caller holds bt.mu.
func (bt *Batcher) resolveLocked(n *netlist.Netlist) (*Program, []int32, error) {
	edges := 0
	for i := range n.Gates {
		edges += len(n.Gates[i].Fanin)
	}
	if m := bt.memo[n]; m != nil {
		if m.gates == len(n.Gates) && m.edges == edges {
			return m.prog, m.slot, nil
		}
		// Mutated in place since memoized (e.g. a trojan was inserted):
		// drop the stale entry and re-resolve.
		releaseProgram(m.prog)
		delete(bt.memo, n)
	}
	if err := n.Levelize(); err != nil {
		return nil, nil, err
	}
	prog, slot, err := sharedProgram(netlist.CompactOf(n))
	if err != nil {
		return nil, nil, err
	}
	if len(bt.memo) >= memoLimit {
		for k, m := range bt.memo {
			releaseProgram(m.prog)
			delete(bt.memo, k)
		}
	}
	bt.memo[n] = &netMemo{gates: len(n.Gates), edges: edges, prog: prog, slot: slot}
	return prog, slot, nil
}

// dispatch drains one program's queue, packing a fair-share cycle of
// blocks into the shared engine per run, until the queue is empty.
func (bt *Batcher) dispatch(ps *progState) {
	defer bt.wg.Done()
	for {
		bt.mu.Lock()
		if len(ps.queue) == 0 {
			ps.busy = false
			bt.mu.Unlock()
			return
		}
		// Fair-share cycle: scan the queue in FIFO order, taking at
		// most one block per job key and skipping blocks that don't fit
		// the remaining words — a narrower later block may still pack
		// in. Skipped blocks keep their queue order for the next cycle.
		var cycle []*batchItem
		seen := make(map[string]bool)
		used := 0
		rest := ps.queue[:0]
		for _, it := range ps.queue {
			if !seen[it.jobKey] && used+it.req.Words <= bt.engineWords {
				seen[it.jobKey] = true
				used += it.req.Words
				it.taken = true
				cycle = append(cycle, it)
				continue
			}
			rest = append(rest, it)
		}
		ps.queue = rest
		if ps.eng == nil {
			// Build the shared wide engine on first dispatch: a
			// registry reference plus one vals allocation. The lease's
			// row space IS the program row space (identity slot), which
			// is exactly what the block views index into.
			ps.eng = newProgramEngine(ps.prog, bt.engineWords, bt.workers)
		}
		eng := ps.eng
		bt.mu.Unlock()

		now := time.Now()
		for _, it := range cycle {
			blockWait.Observe(now.Sub(it.enq))
		}
		batchRuns.Inc()
		batchFill.Add(int64(used))
		batchCapacity.Add(int64(bt.engineWords))

		// Place the blocks side by side and run once. Fill/Read execute
		// sequentially on this goroutine; a panic in a callback (or in
		// the engine) fails the affected blocks instead of killing the
		// dispatcher.
		off := 0
		views := make([]blockView, len(cycle))
		for i, it := range cycle {
			views[i] = blockView{eng: eng, slot: it.slot, off: off, words: it.req.Words}
			off += it.req.Words
		}
		errs := make([]error, len(cycle))
		for i := range cycle {
			i := i
			errs[i] = guardBlock("fill", func() { cycle[i].req.Fill(views[i]) })
		}
		// Blocks pack contiguously from word 0, so only the used lane
		// range needs computing: a half-filled cycle costs half an
		// engine run.
		start := time.Now()
		if runErr := guardBlock("run", func() { eng.runWords(used) }); runErr != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = runErr
				}
			}
		} else {
			defaultMeters.runTime.Observe(time.Since(start))
			for i := range cycle {
				if errs[i] != nil {
					continue
				}
				i := i
				errs[i] = guardBlock("read", func() { cycle[i].req.Read(views[i]) })
				// Per-block attribution: the block's registry (scoped
				// per job under the daemon) is charged exactly its own
				// vectors. Scoped registries mirror into the process
				// default, so the totals count useful lanes, not engine
				// capacity.
				m := metersFor(cycle[i].reg)
				m.packedRuns.Inc()
				m.packedVectors.Add(int64(64 * cycle[i].req.Words))
			}
		}
		for i, it := range cycle {
			it.done <- errs[i]
		}
	}
}

// guardBlock contains a panic from a block callback or engine run as an
// error delivered to the submitting caller.
func guardBlock(phase string, fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: batched %s panicked: %v", phase, r)
		}
	}()
	fn()
	return nil
}

// newProgramEngine builds a Packed lease directly over an
// already-registered program: identity slot, lease rows = program rows.
// The engine's own meters are silenced — the batcher accounts per
// block.
func newProgramEngine(prog *Program, words, workers int) *Packed {
	progRegistry.mu.Lock()
	prog.refs++
	progRegistry.mu.Unlock()
	p := &Packed{
		prog:  prog,
		words: words,
		met:   silentMeters,
		vals:  make([]uint64, prog.numGates*words),
	}
	p.SetWorkers(workers)
	return p
}

// Close shuts the batcher down: still-queued blocks fail with an error,
// in-flight dispatch cycles drain, and shared engines and memo
// references are released. Simulate after Close returns an error.
func (bt *Batcher) Close() {
	bt.mu.Lock()
	if bt.closed {
		bt.mu.Unlock()
		return
	}
	bt.closed = true
	for _, ps := range bt.progs {
		for _, it := range ps.queue {
			it.taken = true // no longer withdrawable; resolved below
			it.done <- errBatcherClosed
		}
		ps.queue = nil
	}
	for n, m := range bt.memo {
		releaseProgram(m.prog)
		delete(bt.memo, n)
	}
	bt.mu.Unlock()
	bt.wg.Wait()
	bt.mu.Lock()
	for _, ps := range bt.progs {
		ps.eng.Close() // nil-safe; the engine owns the progState's only ref
	}
	bt.progs = make(map[*Program]*progState)
	bt.mu.Unlock()
}

// blockView is a Block windowed onto a shared engine: gate IDs map
// through the block's own slot to program rows, word indices offset
// into the block's lane range. Nothing outside [off, off+words) is
// reachable, which is what makes shared-engine results byte-identical
// to exclusive ones.
type blockView struct {
	eng   *Packed
	slot  []int32
	off   int
	words int
}

func (v blockView) row(id netlist.GateID) int {
	if v.slot == nil {
		return int(id)
	}
	return int(v.slot[id])
}

func (v blockView) Words() int    { return v.words }
func (v blockView) Patterns() int { return 64 * v.words }

func (v blockView) SetWord(id netlist.GateID, w int, bits uint64) {
	v.eng.vals[v.row(id)*v.eng.words+v.off+w] = bits
}

func (v blockView) Word(id netlist.GateID, w int) uint64 {
	return v.eng.vals[v.row(id)*v.eng.words+v.off+w]
}

func (v blockView) SetBit(id netlist.GateID, pat int, b bool) {
	idx := v.row(id)*v.eng.words + v.off + pat/64
	mask := uint64(1) << uint(pat%64)
	if b {
		v.eng.vals[idx] |= mask
	} else {
		v.eng.vals[idx] &^= mask
	}
}

func (v blockView) Bit(id netlist.GateID, pat int) bool {
	return v.eng.vals[v.row(id)*v.eng.words+v.off+pat/64]&(1<<uint(pat%64)) != 0
}

func (v blockView) CountOnes(counts []int64, limit int) {
	W := v.eng.words
	fullWords := limit / 64
	remBits := limit % 64
	if fullWords > v.words {
		fullWords = v.words
		remBits = 0
	}
	for g := 0; g < v.eng.prog.numGates; g++ {
		base := v.row(netlist.GateID(g))*W + v.off
		var c int
		for w := 0; w < fullWords; w++ {
			c += bits.OnesCount64(v.eng.vals[base+w])
		}
		if remBits > 0 {
			mask := (uint64(1) << uint(remBits)) - 1
			c += bits.OnesCount64(v.eng.vals[base+fullWords] & mask)
		}
		counts[g] += int64(c)
	}
}

var _ Block = blockView{}
var _ Service = (*Batcher)(nil)
