package sim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"cghti/internal/gen"
	"cghti/internal/netlist"
)

// simulateVia runs one random block through svc and returns every
// gate's output words — the full observable state of the simulation,
// so comparing it across services is a byte-identity check.
func simulateVia(t *testing.T, svc Service, ctx context.Context, n *netlist.Netlist, words int, seed int64) [][]uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inputs := n.CombInputs()
	out := make([][]uint64, len(n.Gates))
	err := svc.Simulate(ctx, &Request{
		Netlist: n,
		Words:   words,
		Workers: 1,
		Fill:    func(b Block) { FillRandom(b, inputs, rng) },
		Read: func(b Block) {
			for g := range out {
				ws := make([]uint64, words)
				for w := 0; w < words; w++ {
					ws[w] = b.Word(netlist.GateID(g), w)
				}
				out[g] = ws
			}
		},
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	return out
}

// TestBatcherBitIdentical pins the tentpole's core guarantee: a block
// routed through the batching service produces byte-identical words to
// the exclusive pooled path, for several circuits and block widths.
func TestBatcherBitIdentical(t *testing.T) {
	bt := NewBatcher(BatcherConfig{EngineWords: 8})
	defer bt.Close()
	ctx := context.Background()
	for _, name := range []string{"c17", "s27", "c432", "c880"} {
		n := gen.MustBenchmark(name)
		for _, words := range []int{1, 3, 8, 16} { // 16 > EngineWords: exclusive fallback path
			want := simulateVia(t, Exclusive{}, ctx, n, words, 42)
			got := simulateVia(t, bt, ctx, n, words, 42)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s words=%d: batched simulation differs from exclusive", name, words)
			}
		}
	}
}

// TestBatcherCopacksJobs pins the fair-share packing mechanics
// deterministically: while the dispatcher is stuck in one block's Fill,
// more blocks from three job keys queue up behind it; the next cycle
// must contain exactly one block per key, packed side by side (nonzero
// offsets), and still produce byte-identical words per block.
func TestBatcherCopacksJobs(t *testing.T) {
	n := gen.MustBenchmark("c17")
	inputs := n.CombInputs()
	bt := NewBatcher(BatcherConfig{EngineWords: 8})
	defer bt.Close()

	// Block 0: stall the dispatcher inside Fill until the others queue.
	gate := make(chan struct{})
	firstQueued := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := bt.Simulate(context.Background(), &Request{
			Netlist: n, Words: 1,
			Fill: func(b Block) { close(firstQueued); <-gate },
			Read: func(b Block) {},
		})
		if err != nil {
			t.Errorf("stall block: %v", err)
		}
	}()
	<-firstQueued

	// Three more blocks: two keys plus a second block for key "a" (must
	// NOT share a cycle with the first "a" block).
	type result struct {
		run  int64 // batchRuns value observed inside Fill = cycle identity
		off  int   // lane offset within the shared engine
		outs [][]uint64
	}
	res := make(map[string]*result)
	var mu sync.Mutex
	submit := func(key, tag string, seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		r := &result{}
		ctx := WithJobKey(context.Background(), key)
		err := bt.Simulate(ctx, &Request{
			Netlist: n, Words: 2,
			Fill: func(b Block) {
				r.run = batchRuns.Value()
				r.off = b.(blockView).off
				FillRandom(b, inputs, rng)
			},
			Read: func(b Block) {
				for g := range n.Gates {
					ws := []uint64{b.Word(netlist.GateID(g), 0), b.Word(netlist.GateID(g), 1)}
					r.outs = append(r.outs, ws)
				}
			},
		})
		if err != nil {
			t.Errorf("block %s: %v", tag, err)
		}
		mu.Lock()
		res[tag] = r
		mu.Unlock()
	}
	wg.Add(3)
	go submit("a", "a1", 1)
	go submit("b", "b1", 2)
	go submit("a", "a2", 3)
	// Wait until all three are queued behind the stalled cycle, then
	// release the dispatcher.
	for {
		bt.mu.Lock()
		queued := 0
		for _, ps := range bt.progs {
			queued += len(ps.queue)
		}
		bt.mu.Unlock()
		if queued == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	// Whichever "a" block queued first co-packs with b1; the other "a"
	// block must land in a later cycle of its own (fair share: one block
	// per job key per cycle).
	a1, b1, a2 := res["a1"], res["b1"], res["a2"]
	if a1.run == a2.run {
		t.Errorf("two blocks of job a share cycle %d — fair share violated", a1.run)
	}
	shared := a1
	if a2.run == b1.run {
		shared = a2
	}
	if shared.run != b1.run {
		t.Errorf("neither a block shares b1's cycle (runs a1=%d a2=%d b1=%d)", a1.run, a2.run, b1.run)
	} else {
		if shared.off == b1.off {
			t.Errorf("co-packed blocks share lane offset %d", shared.off)
		}
		if shared.off != 0 && b1.off != 0 {
			t.Errorf("no co-packed block at offset 0 (got %d, %d)", shared.off, b1.off)
		}
	}
	// Byte-identity per block regardless of where it landed.
	for tag, seed := range map[string]int64{"a1": 1, "b1": 2, "a2": 3} {
		want := simulateVia(t, Exclusive{}, context.Background(), n, 2, seed)
		if !reflect.DeepEqual(res[tag].outs, want) {
			t.Errorf("block %s: co-packed words differ from exclusive", tag)
		}
	}
}

// TestBatcherWithdrawal pins cooperative cancellation: a block whose
// context is canceled while still queued is withdrawn (its Fill never
// runs) and Simulate returns ctx.Err() without waiting for the engine.
func TestBatcherWithdrawal(t *testing.T) {
	n := gen.MustBenchmark("c17")
	bt := NewBatcher(BatcherConfig{EngineWords: 4})
	defer bt.Close()

	gate := make(chan struct{})
	stalled := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = bt.Simulate(context.Background(), &Request{
			Netlist: n, Words: 1,
			Fill: func(b Block) { close(stalled); <-gate },
			Read: func(b Block) {},
		})
	}()
	<-stalled

	ctx, cancel := context.WithCancel(context.Background())
	filled := false
	done := make(chan error, 1)
	go func() {
		done <- bt.Simulate(ctx, &Request{
			Netlist: n, Words: 1,
			Fill: func(b Block) { filled = true },
			Read: func(b Block) {},
		})
	}()
	// Wait for it to queue, then cancel while the dispatcher is stalled.
	for {
		bt.mu.Lock()
		queued := 0
		for _, ps := range bt.progs {
			queued += len(ps.queue)
		}
		bt.mu.Unlock()
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("withdrawn block returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("withdrawn block did not return while dispatcher was stalled")
	}
	close(gate)
	wg.Wait()
	if filled {
		t.Error("withdrawn block's Fill ran")
	}
}

// TestBatcherClose pins shutdown: Simulate after Close errors, and
// Close is idempotent.
func TestBatcherClose(t *testing.T) {
	n := gen.MustBenchmark("c17")
	bt := NewBatcher(BatcherConfig{})
	// Exercise it once so Close has an engine to release.
	simulateVia(t, bt, context.Background(), n, 1, 7)
	bt.Close()
	bt.Close()
	err := bt.Simulate(context.Background(), &Request{
		Netlist: n, Words: 1, Fill: func(Block) {}, Read: func(Block) {},
	})
	if err == nil {
		t.Fatal("Simulate on closed batcher succeeded")
	}
}

// TestBatcherPanicContained pins that a panicking Fill or Read fails
// only its own block, as an error, and the dispatcher survives to run
// later blocks.
func TestBatcherPanicContained(t *testing.T) {
	n := gen.MustBenchmark("c17")
	bt := NewBatcher(BatcherConfig{})
	defer bt.Close()
	err := bt.Simulate(context.Background(), &Request{
		Netlist: n, Words: 1,
		Fill: func(Block) { panic("boom") },
		Read: func(Block) {},
	})
	if err == nil {
		t.Fatal("panicking Fill did not surface as an error")
	}
	// The service must still work afterwards.
	want := simulateVia(t, Exclusive{}, context.Background(), n, 1, 9)
	got := simulateVia(t, bt, context.Background(), n, 1, 9)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("batcher broken after contained panic")
	}
}

// TestBatcherStaleNetlistMemo pins the memo's mutation guard: growing a
// netlist in place after it was batched must re-resolve to a fresh
// program that simulates the new gate.
func TestBatcherStaleNetlistMemo(t *testing.T) {
	n := gen.MustBenchmark("c17")
	bt := NewBatcher(BatcherConfig{})
	defer bt.Close()
	simulateVia(t, bt, context.Background(), n, 1, 3)

	src := n.CombInputs()[0]
	tap := n.MustAddGate("late_tap", netlist.Not)
	n.Connect(src, tap)
	if err := n.Levelize(); err != nil {
		t.Fatal(err)
	}

	var tapWord, srcWord uint64
	err := bt.Simulate(context.Background(), &Request{
		Netlist: n, Words: 1,
		Fill: func(b Block) {
			rng := rand.New(rand.NewSource(5))
			FillRandom(b, n.CombInputs(), rng)
		},
		Read: func(b Block) {
			tapWord = b.Word(tap, 0)
			srcWord = b.Word(src, 0)
		},
	})
	if err != nil {
		t.Fatalf("Simulate after mutation: %v", err)
	}
	if tapWord != ^srcWord {
		t.Errorf("late-added inverter not simulated: src=%x tap=%x", srcWord, tapWord)
	}
}

// TestServicePlumbing pins the context helpers the daemon relies on.
func TestServicePlumbing(t *testing.T) {
	if _, ok := ServiceFor(context.Background()).(Exclusive); !ok {
		t.Error("bare context should resolve to the Exclusive service")
	}
	bt := NewBatcher(BatcherConfig{})
	defer bt.Close()
	ctx := WithService(context.Background(), bt)
	if ServiceFor(ctx) != Service(bt) {
		t.Error("WithService did not round-trip")
	}
	if JobKeyFor(ctx) != "" {
		t.Error("unset job key should be empty")
	}
	if k := JobKeyFor(WithJobKey(ctx, "job-9")); k != "job-9" {
		t.Errorf("job key round-trip: got %q", k)
	}
}
