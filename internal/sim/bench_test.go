package sim

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"cghti/internal/gen"
	"cghti/internal/netlist"
)

// benchPackedSim measures one full Run (64·words patterns) on the given
// circuit with the given worker count, reporting pattern throughput.
func benchPackedSim(b *testing.B, name string, words, workers int) {
	b.Helper()
	n, err := gen.Benchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPackedWorkers(n, words, workers)
	if err != nil {
		b.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run()
	}
	b.StopTimer()
	patterns := float64(b.N) * float64(64*words)
	b.ReportMetric(patterns/b.Elapsed().Seconds(), "patterns/s")
}

// BenchmarkPackedSimC2670 is the headline kernel benchmark on the
// paper's reference circuit: 256 words = 16384 patterns per Run.
func BenchmarkPackedSimC2670(b *testing.B) {
	b.Run("workers1", func(b *testing.B) { benchPackedSim(b, "c2670", 256, 1) })
	b.Run("workers2", func(b *testing.B) { benchPackedSim(b, "c2670", 256, 2) })
	b.Run("workers8", func(b *testing.B) { benchPackedSim(b, "c2670", 256, 8) })
}

// BenchmarkPackedSimC880 tracks a mid-size combinational circuit.
func BenchmarkPackedSimC880(b *testing.B) {
	b.Run("workers1", func(b *testing.B) { benchPackedSim(b, "c880", 256, 1) })
	b.Run("workers8", func(b *testing.B) { benchPackedSim(b, "c880", 256, 8) })
}

// BenchmarkPackedSimPooled measures the acquire/run/release cycle the
// pipeline stages use, against a c880-class circuit.
func BenchmarkPackedSimPooled(b *testing.B) {
	n, err := gen.Benchmark("c880")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := AcquirePacked(n, 16)
		if err != nil {
			b.Fatal(err)
		}
		p.Randomize(rng)
		p.Run()
		ReleasePacked(p)
	}
}

// BenchmarkPackedSimCounters isolates the observability cost of Run:
// the per-Run counter updates are three atomic adds regardless of
// circuit size, so shrinking the workload makes any per-word or
// per-gate instrumentation creep visible as a throughput cliff.
func BenchmarkPackedSimCounters(b *testing.B) {
	n, err := gen.Benchmark("c432")
	if err != nil {
		b.Fatal(err)
	}
	for _, words := range []int{1, 64} {
		p, err := NewPacked(n, words)
		if err != nil {
			b.Fatal(err)
		}
		p.Randomize(rand.New(rand.NewSource(1)))
		b.Run(map[int]string{1: "words1", 64: "words64"}[words], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Run()
			}
		})
	}
}

// benchFleet measures aggregate fleet throughput: jobs concurrent
// submitters each push narrow blocks of the same circuit through svc —
// the serving daemon's workload shape. Exclusive gives each block its
// own engine run; the batcher packs the fleet's blocks side by side
// into shared wide engines. Reported as patterns/s across the fleet.
func benchFleet(b *testing.B, svc Service, jobs, words int) {
	b.Helper()
	n, err := gen.Benchmark("c880")
	if err != nil {
		b.Fatal(err)
	}
	inputs := n.CombInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < jobs; j++ {
			j := j
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(j + 1)))
				ctx := WithJobKey(context.Background(), "job"+itoa(j))
				err := svc.Simulate(ctx, &Request{
					Netlist: n, Words: words, Workers: 1,
					Fill: func(bl Block) { FillRandom(bl, inputs, rng) },
					Read: func(bl Block) { sinkWord += bl.Word(n.POs[0], 0) },
				})
				if err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	patterns := float64(b.N) * float64(jobs) * float64(64*words)
	b.ReportMetric(patterns/b.Elapsed().Seconds(), "patterns/s")
}

// BenchmarkSimServiceFleet is the shared-vs-exclusive engine pair `make
// bench` records in BENCH_sim.json: the same 8-job fleet of 4-word
// blocks, once on exclusive pooled engines and once multiplexed onto
// the batching service (one 32-word engine packs the whole fleet).
func BenchmarkSimServiceFleet(b *testing.B) {
	b.Run("exclusive/jobs8", func(b *testing.B) { benchFleet(b, Exclusive{}, 8, 4) })
	b.Run("shared/jobs8", func(b *testing.B) {
		bt := NewBatcher(BatcherConfig{EngineWords: 32})
		defer bt.Close()
		benchFleet(b, bt, 8, 4)
	})
}

var sinkWord uint64

// BenchmarkKernelOps measures the specialized word kernels directly on a
// synthetic wide netlist dominated by 2-input gates.
func BenchmarkKernelOps(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	n := randomNetlist(rng, 16, 400)
	p, err := NewPacked(n, 64)
	if err != nil {
		b.Fatal(err)
	}
	p.Randomize(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run()
	}
	b.StopTimer()
	sinkWord += p.Word(netlist.GateID(n.NumGates()-1), 0)
}
