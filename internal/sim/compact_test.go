package sim

import (
	"math/rand"
	"testing"

	"cghti/internal/netlist"
)

// TestPackedCompactMatchesNetlist pins the Compact construction path:
// an engine built from the arena form must produce bit-identical
// simulation results to one built from the pointer form, including
// Randomize draw order, Run values, Step latching and CountOnes.
func TestPackedCompactMatchesNetlist(t *testing.T) {
	n := mkC17(t)
	d := n.MustAddGate("ff", netlist.DFF)
	n.Connect(n.MustLookup("22"), d)
	g := n.MustAddGate("fb", netlist.And)
	n.Connect(d, g)
	n.Connect(n.MustLookup("23"), g)
	n.MarkPO(g)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}

	const words = 4
	pn, err := NewPacked(n, words)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPackedCompact(netlist.CompactOf(n), words, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pc.Netlist() != nil {
		t.Fatal("Compact-built engine should have a nil Netlist")
	}

	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	onesA := make([]int64, n.NumGates())
	onesB := make([]int64, n.NumGates())
	for round := 0; round < 3; round++ {
		pn.Randomize(rngA)
		pc.Randomize(rngB)
		pn.Step()
		pc.Step()
		pn.CountOnes(onesA, pn.Patterns())
		pc.CountOnes(onesB, pc.Patterns())
		for i := range n.Gates {
			for w := 0; w < words; w++ {
				if a, b := pn.Word(netlist.GateID(i), w), pc.Word(netlist.GateID(i), w); a != b {
					t.Fatalf("round %d gate %d word %d: netlist %x, compact %x", round, i, w, a, b)
				}
			}
		}
	}
	for i := range onesA {
		if onesA[i] != onesB[i] {
			t.Fatalf("gate %d: CountOnes %d (netlist) vs %d (compact)", i, onesA[i], onesB[i])
		}
	}
}
