package sim

import (
	"cghti/internal/netlist"
	"cghti/internal/obs"
)

// Event is an event-driven two-valued simulator. It keeps the full value
// image of the circuit and re-evaluates only the cone affected by input
// changes, which makes MERO's "flip one bit, observe rare-node counts"
// inner loop cheap (cost proportional to the flipped input's cone, not
// the circuit).
type Event struct {
	n     *netlist.Netlist
	vals  []uint8
	dirty []bool
	// byLevel buckets pending gate IDs by logic level so evaluation is
	// always in level order (each gate evaluated at most once per
	// propagation wave).
	byLevel  [][]netlist.GateID
	maxLevel int32
	// changed collects the IDs whose value changed during the last
	// Propagate (inputs included). Consumers like MERO use it to update
	// rare-hit counts incrementally instead of rescanning every node.
	changed       []netlist.GateID
	pendingInputs []netlist.GateID
	met           *meters
}

// NewEvent builds an event-driven simulator; all values start at 0 and
// consistent (a full propagation is performed).
func NewEvent(n *netlist.Netlist) (*Event, error) {
	if err := n.Levelize(); err != nil {
		return nil, err
	}
	e := &Event{
		n:        n,
		vals:     make([]uint8, len(n.Gates)),
		dirty:    make([]bool, len(n.Gates)),
		maxLevel: n.MaxLevel(),
		met:      defaultMeters,
	}
	e.byLevel = make([][]netlist.GateID, e.maxLevel+1)
	e.FullEval()
	return e, nil
}

// SetRegistry points the simulator's counters at r (see
// Packed.SetRegistry).
func (e *Event) SetRegistry(r *obs.Registry) { e.met = metersFor(r) }

// Val returns the current value of gate id.
func (e *Event) Val(id netlist.GateID) uint8 { return e.vals[id] }

// Values returns the live value image (do not modify).
func (e *Event) Values() []uint8 { return e.vals }

// SetInput sets a combinational input (PI or DFF state) and schedules its
// fanout. Call Propagate to settle the circuit.
func (e *Event) SetInput(id netlist.GateID, v uint8) {
	v &= 1
	if e.vals[id] == v {
		return
	}
	e.vals[id] = v
	e.pendingInputs = append(e.pendingInputs, id)
	e.scheduleFanout(id)
}

func (e *Event) scheduleFanout(id netlist.GateID) {
	for _, s := range e.n.Gates[id].Fanout {
		sg := &e.n.Gates[s]
		if sg.Type == netlist.DFF {
			continue // sequential boundary
		}
		if !e.dirty[s] {
			e.dirty[s] = true
			e.byLevel[sg.Level] = append(e.byLevel[sg.Level], s)
		}
	}
}

// Propagate settles all scheduled events and returns the number of gates
// whose value changed. Changed (inputs plus gates) lists them afterwards.
func (e *Event) Propagate() int {
	e.met.eventProps.Inc()
	e.changed = append(e.changed[:0], e.pendingInputs...)
	e.pendingInputs = e.pendingInputs[:0]
	changed := 0
	var in []uint8
	for lvl := int32(1); lvl <= e.maxLevel; lvl++ {
		bucket := e.byLevel[lvl]
		if len(bucket) == 0 {
			continue
		}
		e.byLevel[lvl] = bucket[:0]
		for _, id := range bucket {
			e.dirty[id] = false
			g := &e.n.Gates[id]
			if cap(in) < len(g.Fanin) {
				in = make([]uint8, len(g.Fanin))
			}
			buf := in[:len(g.Fanin)]
			for i, f := range g.Fanin {
				buf[i] = e.vals[f]
			}
			nv := EvalGate(g.Type, buf)
			if nv != e.vals[id] {
				e.vals[id] = nv
				changed++
				e.changed = append(e.changed, id)
				e.scheduleFanout(id)
			}
		}
	}
	return changed
}

// Changed returns the gates (inputs included) whose value changed during
// the last Propagate. The slice is reused across calls; copy it to keep.
func (e *Event) Changed() []netlist.GateID { return e.changed }

// FullEval recomputes every gate from the current input values,
// discarding pending events.
func (e *Event) FullEval() {
	for lvl := range e.byLevel {
		e.byLevel[lvl] = e.byLevel[lvl][:0]
	}
	for i := range e.dirty {
		e.dirty[i] = false
	}
	e.changed = e.changed[:0]
	e.pendingInputs = e.pendingInputs[:0]
	topo, _ := e.n.TopoOrder()
	var in []uint8
	for _, id := range topo {
		g := &e.n.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			// keep current state
		case netlist.Const0:
			e.vals[id] = 0
		case netlist.Const1:
			e.vals[id] = 1
		default:
			if cap(in) < len(g.Fanin) {
				in = make([]uint8, len(g.Fanin))
			}
			buf := in[:len(g.Fanin)]
			for i, f := range g.Fanin {
				buf[i] = e.vals[f]
			}
			e.vals[id] = EvalGate(g.Type, buf)
		}
	}
}
