package sim

import (
	"cghti/internal/netlist"
)

// The packed simulator executes a compiled program instead of walking
// the netlist: compileProgram lowers the topological gate order into a
// flat op list once per engine, hoisting the gate-type switch out of
// the per-word inner loop and specializing the overwhelmingly common
// 1- and 2-input gates into tight []uint64 kernels. Each op reads and
// writes whole word ranges, so the same program runs serially or
// sharded across goroutines over disjoint word blocks (distinct
// pattern words are fully independent).
//
// The compiler consumes the arena form (netlist.Compact): the per-gate
// type and fanin lookups stream through two flat arrays instead of
// chasing per-gate slice headers, which is what keeps compile time and
// peak memory sane on million-gate SoC netlists.

type opKind uint8

const (
	opConst0 opKind = iota
	opConst1
	opBuf
	opNot
	opAnd2
	opNand2
	opOr2
	opNor2
	opXor2
	opXnor2
	opAndN
	opNandN
	opOrN
	opNorN
	opXorN
	opXnorN
)

// op is one compiled gate evaluation. out/a/b are gate indexes (not
// word offsets, so the program is independent of the engine's word
// count); fanin is populated only for the N-ary kinds.
type op struct {
	kind  opKind
	out   int32
	a, b  int32
	fanin []int32
}

func pick(two bool, k2, kN opKind) opKind {
	if two {
		return k2
	}
	return kN
}

// compileProgram lowers the topo order into the op list. Inputs and
// DFFs are state (set by the caller) and compile to nothing.
func compileProgram(c *netlist.Compact, topo []netlist.GateID) []op {
	prog := make([]op, 0, len(topo))
	for _, id := range topo {
		typ := c.TypeOf(id)
		fanin := c.FaninOf(id)
		o := op{out: int32(id)}
		switch typ {
		case netlist.Input, netlist.DFF:
			continue
		case netlist.Const0:
			o.kind = opConst0
		case netlist.Const1:
			o.kind = opConst1
		case netlist.Buf:
			o.kind = opBuf
			o.a = int32(fanin[0])
		case netlist.Not:
			o.kind = opNot
			o.a = int32(fanin[0])
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
			two := len(fanin) == 2
			switch typ {
			case netlist.And:
				o.kind = pick(two, opAnd2, opAndN)
			case netlist.Nand:
				o.kind = pick(two, opNand2, opNandN)
			case netlist.Or:
				o.kind = pick(two, opOr2, opOrN)
			case netlist.Nor:
				o.kind = pick(two, opNor2, opNorN)
			case netlist.Xor:
				o.kind = pick(two, opXor2, opXorN)
			case netlist.Xnor:
				o.kind = pick(two, opXnor2, opXnorN)
			}
			if two {
				o.a, o.b = int32(fanin[0]), int32(fanin[1])
			} else {
				o.fanin = make([]int32, len(fanin))
				for i, f := range fanin {
					o.fanin[i] = int32(f)
				}
			}
		}
		prog = append(prog, o)
	}
	return prog
}

// runProgram evaluates the program over the word range [lo, hi) of
// vals (laid out gate-major: gate g, word w -> vals[g*W+w]). Safe to
// call concurrently for disjoint ranges.
func runProgram(prog []op, vals []uint64, W, lo, hi int) {
	span := hi - lo
	if span <= 0 {
		return
	}
	for i := range prog {
		o := &prog[i]
		out := vals[int(o.out)*W+lo : int(o.out)*W+hi : int(o.out)*W+hi]
		switch o.kind {
		case opConst0:
			for w := range out {
				out[w] = 0
			}
		case opConst1:
			for w := range out {
				out[w] = ^uint64(0)
			}
		case opBuf:
			copy(out, vals[int(o.a)*W+lo:int(o.a)*W+hi])
		case opNot:
			av := vals[int(o.a)*W+lo : int(o.a)*W+hi : int(o.a)*W+hi]
			for w := range out {
				out[w] = ^av[w]
			}
		case opAnd2:
			av := vals[int(o.a)*W+lo : int(o.a)*W+hi : int(o.a)*W+hi]
			bv := vals[int(o.b)*W+lo : int(o.b)*W+hi : int(o.b)*W+hi]
			for w := range out {
				out[w] = av[w] & bv[w]
			}
		case opNand2:
			av := vals[int(o.a)*W+lo : int(o.a)*W+hi : int(o.a)*W+hi]
			bv := vals[int(o.b)*W+lo : int(o.b)*W+hi : int(o.b)*W+hi]
			for w := range out {
				out[w] = ^(av[w] & bv[w])
			}
		case opOr2:
			av := vals[int(o.a)*W+lo : int(o.a)*W+hi : int(o.a)*W+hi]
			bv := vals[int(o.b)*W+lo : int(o.b)*W+hi : int(o.b)*W+hi]
			for w := range out {
				out[w] = av[w] | bv[w]
			}
		case opNor2:
			av := vals[int(o.a)*W+lo : int(o.a)*W+hi : int(o.a)*W+hi]
			bv := vals[int(o.b)*W+lo : int(o.b)*W+hi : int(o.b)*W+hi]
			for w := range out {
				out[w] = ^(av[w] | bv[w])
			}
		case opXor2:
			av := vals[int(o.a)*W+lo : int(o.a)*W+hi : int(o.a)*W+hi]
			bv := vals[int(o.b)*W+lo : int(o.b)*W+hi : int(o.b)*W+hi]
			for w := range out {
				out[w] = av[w] ^ bv[w]
			}
		case opXnor2:
			av := vals[int(o.a)*W+lo : int(o.a)*W+hi : int(o.a)*W+hi]
			bv := vals[int(o.b)*W+lo : int(o.b)*W+hi : int(o.b)*W+hi]
			for w := range out {
				out[w] = ^(av[w] ^ bv[w])
			}
		case opAndN, opNandN:
			copy(out, vals[int(o.fanin[0])*W+lo:int(o.fanin[0])*W+hi])
			for _, f := range o.fanin[1:] {
				fv := vals[int(f)*W+lo : int(f)*W+hi : int(f)*W+hi]
				for w := range out {
					out[w] &= fv[w]
				}
			}
			if o.kind == opNandN {
				for w := range out {
					out[w] = ^out[w]
				}
			}
		case opOrN, opNorN:
			copy(out, vals[int(o.fanin[0])*W+lo:int(o.fanin[0])*W+hi])
			for _, f := range o.fanin[1:] {
				fv := vals[int(f)*W+lo : int(f)*W+hi : int(f)*W+hi]
				for w := range out {
					out[w] |= fv[w]
				}
			}
			if o.kind == opNorN {
				for w := range out {
					out[w] = ^out[w]
				}
			}
		case opXorN, opXnorN:
			copy(out, vals[int(o.fanin[0])*W+lo:int(o.fanin[0])*W+hi])
			for _, f := range o.fanin[1:] {
				fv := vals[int(f)*W+lo : int(f)*W+hi : int(f)*W+hi]
				for w := range out {
					out[w] ^= fv[w]
				}
			}
			if o.kind == opXnorN {
				for w := range out {
					out[w] = ^out[w]
				}
			}
		}
	}
}
