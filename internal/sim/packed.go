// Package sim provides the logic simulators that back rare-node
// extraction (Algorithm 1), trigger-cube proving, detection evaluation
// and MERO:
//
//   - Packed: 64-way bit-parallel two-valued simulation (one pattern per
//     bit of a machine word), the workhorse for the 10,000-vector
//     functional simulation the paper uses to find rare nodes;
//   - Eval: a scalar reference evaluator, used by tests to pin Packed;
//   - three-valued (0/1/X) cube simulation in threeval.go, used to prove
//     that a merged trigger cube excites every clique member;
//   - an event-driven incremental simulator in event.go, used by MERO's
//     bit-flip inner loop.
package sim

import (
	"fmt"
	"math/rand"

	"cghti/internal/netlist"
	"cghti/internal/obs"
)

// Observability counters, bulk-added once per simulation call so the
// per-gate inner loops stay untouched.
var (
	cntPackedRuns    = obs.NewCounter("sim.packed_runs")
	cntPackedVectors = obs.NewCounter("sim.packed_vectors")
	cntEventProps    = obs.NewCounter("sim.event_propagations")
)

// Packed is a bit-parallel two-valued simulator. Each uint64 word carries
// 64 independent patterns; a Packed with W words simulates 64*W patterns
// per Run.
//
// DFF gates are combinational sources: their word values are state, set
// either by SetWord/Randomize (full-scan view, the default for all
// rare-node work) or latched from their data input by Step (sequential
// view).
type Packed struct {
	n     *netlist.Netlist
	topo  []netlist.GateID
	words int
	vals  []uint64 // gate g, word w -> vals[int(g)*words+w]
}

// NewPacked builds a simulator for n with the given number of 64-pattern
// words (words >= 1).
func NewPacked(n *netlist.Netlist, words int) (*Packed, error) {
	if words < 1 {
		return nil, fmt.Errorf("sim: words must be >= 1, got %d", words)
	}
	topo, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	return &Packed{
		n:     n,
		topo:  topo,
		words: words,
		vals:  make([]uint64, len(n.Gates)*words),
	}, nil
}

// Words returns the number of 64-pattern words per gate.
func (p *Packed) Words() int { return p.words }

// Patterns returns the number of patterns simulated per Run (64 * Words).
func (p *Packed) Patterns() int { return 64 * p.words }

// SetWord sets the pattern word w of gate id (a PI or DFF).
func (p *Packed) SetWord(id netlist.GateID, w int, bits uint64) {
	p.vals[int(id)*p.words+w] = bits
}

// Word returns pattern word w of gate id after Run.
func (p *Packed) Word(id netlist.GateID, w int) uint64 {
	return p.vals[int(id)*p.words+w]
}

// SetBit sets pattern pat (0 <= pat < Patterns) of gate id.
func (p *Packed) SetBit(id netlist.GateID, pat int, v bool) {
	idx := int(id)*p.words + pat/64
	mask := uint64(1) << uint(pat%64)
	if v {
		p.vals[idx] |= mask
	} else {
		p.vals[idx] &^= mask
	}
}

// Bit returns pattern pat of gate id.
func (p *Packed) Bit(id netlist.GateID, pat int) bool {
	return p.vals[int(id)*p.words+pat/64]&(1<<uint(pat%64)) != 0
}

// Randomize fills every combinational input (PIs and DFF state) with
// uniform random patterns from rng.
func (p *Packed) Randomize(rng *rand.Rand) {
	for _, id := range p.n.CombInputs() {
		base := int(id) * p.words
		for w := 0; w < p.words; w++ {
			p.vals[base+w] = rng.Uint64()
		}
	}
}

// Run propagates the current input/state words through the combinational
// logic in topological order.
func (p *Packed) Run() {
	cntPackedRuns.Inc()
	cntPackedVectors.Add(int64(64 * p.words))
	W := p.words
	vals := p.vals
	gates := p.n.Gates
	for _, id := range p.topo {
		g := &gates[id]
		base := int(id) * W
		switch g.Type {
		case netlist.Input, netlist.DFF:
			// state; already set
		case netlist.Const0:
			for w := 0; w < W; w++ {
				vals[base+w] = 0
			}
		case netlist.Const1:
			for w := 0; w < W; w++ {
				vals[base+w] = ^uint64(0)
			}
		case netlist.Buf:
			src := int(g.Fanin[0]) * W
			copy(vals[base:base+W], vals[src:src+W])
		case netlist.Not:
			src := int(g.Fanin[0]) * W
			for w := 0; w < W; w++ {
				vals[base+w] = ^vals[src+w]
			}
		case netlist.And, netlist.Nand:
			src0 := int(g.Fanin[0]) * W
			for w := 0; w < W; w++ {
				acc := vals[src0+w]
				for _, f := range g.Fanin[1:] {
					acc &= vals[int(f)*W+w]
				}
				if g.Type == netlist.Nand {
					acc = ^acc
				}
				vals[base+w] = acc
			}
		case netlist.Or, netlist.Nor:
			src0 := int(g.Fanin[0]) * W
			for w := 0; w < W; w++ {
				acc := vals[src0+w]
				for _, f := range g.Fanin[1:] {
					acc |= vals[int(f)*W+w]
				}
				if g.Type == netlist.Nor {
					acc = ^acc
				}
				vals[base+w] = acc
			}
		case netlist.Xor, netlist.Xnor:
			src0 := int(g.Fanin[0]) * W
			for w := 0; w < W; w++ {
				acc := vals[src0+w]
				for _, f := range g.Fanin[1:] {
					acc ^= vals[int(f)*W+w]
				}
				if g.Type == netlist.Xnor {
					acc = ^acc
				}
				vals[base+w] = acc
			}
		}
	}
}

// Step advances the sequential view by one clock: Run, then latch each
// DFF's data-input word into the DFF state for the next cycle.
func (p *Packed) Step() {
	p.Run()
	W := p.words
	for _, d := range p.n.DFFs {
		src := int(p.n.Gates[d].Fanin[0]) * W
		dst := int(d) * W
		copy(p.vals[dst:dst+W], p.vals[src:src+W])
	}
}

// CountOnes adds, for every gate, the number of patterns on which the
// gate evaluated to 1 into counts (len == NumGates). Call after Run.
// limit caps the number of patterns counted (use Patterns() for all).
func (p *Packed) CountOnes(counts []int64, limit int) {
	W := p.words
	fullWords := limit / 64
	remBits := limit % 64
	for g := range p.n.Gates {
		base := g * W
		var c int
		for w := 0; w < fullWords; w++ {
			c += popcount(p.vals[base+w])
		}
		if remBits > 0 {
			mask := (uint64(1) << uint(remBits)) - 1
			c += popcount(p.vals[base+fullWords] & mask)
		}
		counts[g] += int64(c)
	}
}

func popcount(x uint64) int {
	// math/bits.OnesCount64 is inlined by the compiler; keep a local
	// alias so this file reads without the import at every call site.
	return onesCount64(x)
}
