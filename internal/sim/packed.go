// Package sim provides the logic simulators that back rare-node
// extraction (Algorithm 1), trigger-cube proving, detection evaluation
// and MERO:
//
//   - Packed: 64-way bit-parallel two-valued simulation (one pattern per
//     bit of a machine word), the workhorse for the 10,000-vector
//     functional simulation the paper uses to find rare nodes. The
//     engine is a cheap lease over an immutable compiled Program shared
//     through a structural-fingerprint registry (program.go): identical
//     structures — the same netlist, a renamed reparse, an isomorphic
//     partition cone — compile once and share one op list, while each
//     lease owns its value words and meters. Runs shard pattern words
//     across goroutines, or split level bands across cores when the
//     batch is too narrow to shard — bit-identical either way;
//   - Eval: a scalar reference evaluator, used by tests to pin Packed;
//   - three-valued (0/1/X) cube simulation in threeval.go, used to prove
//     that a merged trigger cube excites every clique member;
//   - an event-driven incremental simulator in event.go, used by MERO's
//     bit-flip inner loop.
//
// Callers that simulate in rounds (rare extraction, MERO scoring,
// detection sampling) should recycle engines through AcquirePacked /
// ReleasePacked (pool.go) instead of rebuilding the per-gate word
// arrays every round; batch-oriented callers should go through the
// Service interface (service.go), which lets the daemon multiplex
// pattern blocks from many jobs onto one engine.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"cghti/internal/netlist"
	"cghti/internal/obs"
)

// meters holds the package's metric handles, resolved once per engine
// against a registry (the process default, or a per-run scoped registry
// — see obs.NewScoped) so the per-Run bulk adds stay one atomic each.
type meters struct {
	packedRuns    *obs.Counter
	packedVectors *obs.Counter
	packedShards  *obs.Counter
	levelRuns     *obs.Counter
	eventProps    *obs.Counter
	runTime       *obs.Histogram
}

func metersFor(r *obs.Registry) *meters {
	if r == nil || r == obs.Default() {
		return defaultMeters
	}
	return newMeters(r)
}

func newMeters(r *obs.Registry) *meters {
	return &meters{
		packedRuns:    r.Counter("sim.packed_runs"),
		packedVectors: r.Counter("sim.packed_vectors"),
		packedShards:  r.Counter("sim.packed_shards"),
		levelRuns:     r.Counter("sim.level_parallel_runs"),
		eventProps:    r.Counter("sim.event_propagations"),
		runTime:       r.Histogram("sim.packed_run_time"),
	}
}

var defaultMeters = newMeters(obs.Default())

// minShardWords is the smallest word block worth handing to a
// goroutine: below this the fork/join overhead dominates the kernel
// work, so Run degrades gracefully to fewer (or zero) extra
// goroutines on small batches.
const minShardWords = 8

// Packed is a bit-parallel two-valued simulator. Each uint64 word carries
// 64 independent patterns; a Packed with W words simulates 64*W patterns
// per Run.
//
// A Packed is a lease over a shared immutable Program: prog (and its op
// list) may be shared with any number of other engines simulating the
// same structure concurrently, while vals, the word/worker shape and
// the meters are private to this lease. slot maps the caller's gate IDs
// onto program rows when the engine was mapped onto an isomorph's
// program; nil means the identity (the common case), which keeps the
// accessor fast path a plain index.
//
// DFF gates are combinational sources: their word values are state, set
// either by SetWord/Randomize (full-scan view, the default for all
// rare-node work) or latched from their data input by Step (sequential
// view).
type Packed struct {
	n       *netlist.Netlist // pooling identity; nil for Compact-built engines
	prog    *Program
	slot    []int32 // caller gate -> program row; nil = identity
	words   int
	workers int
	met     *meters
	vals    []uint64         // program row r, word w -> vals[int(r)*words+w]
	inputs  []netlist.GateID // CombInputs order (caller IDs), captured once at build
	dffs    []netlist.GateID
	dffSrc  []netlist.GateID // data driver per DFF; InvalidGate if absent
	closed  bool
}

// NewPacked builds a serial simulator for n with the given number of
// 64-pattern words (words >= 1). Use NewPackedWorkers or SetWorkers to
// enable word-block sharding.
func NewPacked(n *netlist.Netlist, words int) (*Packed, error) {
	return NewPackedWorkers(n, words, 1)
}

// NewPackedWorkers builds a simulator that shards Run across up to
// workers goroutines (1 = serial, 0 = GOMAXPROCS). Results are
// bit-identical for any worker count: distinct pattern words are fully
// independent, and each word is computed by exactly the same kernel
// sequence regardless of which shard owns it.
func NewPackedWorkers(n *netlist.Netlist, words, workers int) (*Packed, error) {
	if err := n.Levelize(); err != nil {
		return nil, err
	}
	// The kernel compiler consumes the arena form; the conversion is a
	// one-time O(gates+wires) flattening, amortized by engine pooling
	// and by the shared-program registry (a structure seen before skips
	// the compile entirely).
	p, err := NewPackedCompact(netlist.CompactOf(n), words, workers)
	if err != nil {
		return nil, err
	}
	p.n = n
	return p, nil
}

// NewPackedCompact builds a simulator directly from the arena form —
// the construction path for streamed million-gate netlists, which never
// materialize a pointer-form Netlist. The compiled program comes from
// the shared registry: if an engine for a structurally identical
// netlist was built before, the op list is reused instead of
// recompiled. Engines built this way are not recycled by AcquirePacked
// (pool identity is the *Netlist).
func NewPackedCompact(c *netlist.Compact, words, workers int) (*Packed, error) {
	if words < 1 {
		return nil, fmt.Errorf("sim: words must be >= 1, got %d", words)
	}
	prog, slot, err := sharedProgram(c)
	if err != nil {
		return nil, err
	}
	p := &Packed{
		prog:   prog,
		slot:   slot,
		words:  words,
		met:    defaultMeters,
		vals:   make([]uint64, prog.numGates*words),
		inputs: c.CombInputs(),
		dffs:   append([]netlist.GateID(nil), c.DFFs...),
	}
	p.dffSrc = make([]netlist.GateID, len(p.dffs))
	for i, d := range p.dffs {
		p.dffSrc[i] = netlist.InvalidGate
		if fanin := c.FaninOf(d); len(fanin) > 0 {
			p.dffSrc[i] = fanin[0]
		}
	}
	p.SetWorkers(workers)
	return p, nil
}

// Close releases the engine's reference on its shared program. The
// engine must not be used afterwards. Optional but recommended for
// engines that bypass the pool: unreferenced programs are preferred
// when the registry evicts. Safe to call twice or on nil.
func (p *Packed) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	releaseProgram(p.prog)
}

// Program returns the shared compiled program backing this lease.
func (p *Packed) Program() *Program { return p.prog }

// row maps a caller gate ID to its program row.
func (p *Packed) row(id netlist.GateID) int {
	if p.slot == nil {
		return int(id)
	}
	return int(p.slot[id])
}

// Words returns the number of 64-pattern words per gate.
func (p *Packed) Words() int { return p.words }

// Patterns returns the number of patterns simulated per Run (64 * Words).
func (p *Packed) Patterns() int { return 64 * p.words }

// Netlist returns the netlist the engine was compiled for; nil when the
// engine was built from the arena form via NewPackedCompact.
func (p *Packed) Netlist() *netlist.Netlist { return p.n }

// SetWorkers sets the Run goroutine budget (1 = serial, 0 = GOMAXPROCS).
func (p *Packed) SetWorkers(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p.workers = workers
}

// Workers returns the resolved Run goroutine budget.
func (p *Packed) Workers() int { return p.workers }

// SetRegistry points the engine's simulation counters at r, so a
// per-run scoped registry attributes the engine's work to that run
// (nil or obs.Default() restores the process-wide handles). Pooled
// engines are reset to the default on AcquirePacked; callers running
// under a scoped registry re-point them after acquiring.
func (p *Packed) SetRegistry(r *obs.Registry) { p.met = metersFor(r) }

// SetWord sets the pattern word w of gate id (a PI or DFF).
func (p *Packed) SetWord(id netlist.GateID, w int, bits uint64) {
	p.vals[p.row(id)*p.words+w] = bits
}

// Word returns pattern word w of gate id after Run.
func (p *Packed) Word(id netlist.GateID, w int) uint64 {
	return p.vals[p.row(id)*p.words+w]
}

// SetBit sets pattern pat (0 <= pat < Patterns) of gate id.
func (p *Packed) SetBit(id netlist.GateID, pat int, v bool) {
	idx := p.row(id)*p.words + pat/64
	mask := uint64(1) << uint(pat%64)
	if v {
		p.vals[idx] |= mask
	} else {
		p.vals[idx] &^= mask
	}
}

// Bit returns pattern pat of gate id.
func (p *Packed) Bit(id netlist.GateID, pat int) bool {
	return p.vals[p.row(id)*p.words+pat/64]&(1<<uint(pat%64)) != 0
}

// Randomize fills every combinational input (PIs and DFF state) with
// uniform random patterns from rng. The fill order is fixed
// (CombInputs order, word-ascending) so the drawn pattern set depends
// only on the rng state, never on the worker count or on which shared
// program the lease landed on.
func (p *Packed) Randomize(rng *rand.Rand) {
	for _, id := range p.inputs {
		base := p.row(id) * p.words
		for w := 0; w < p.words; w++ {
			p.vals[base+w] = rng.Uint64()
		}
	}
}

// Run propagates the current input/state words through the combinational
// logic. With a worker budget > 1 and enough words, the word range is
// split into contiguous blocks simulated concurrently; when the batch
// is too narrow to shard but the program is deep, level bands split
// across the workers instead. Every word is computed by the same
// compiled kernel sequence either way, so the output is bit-identical
// for any worker count and either parallel strategy.
// A Run's wall time also lands in the sim.packed_run_time histogram —
// one time.Now pair per 64*Words-pattern batch, amortized like the
// bulk counter adds.
func (p *Packed) Run() {
	start := time.Now()
	p.run()
	p.met.runTime.Observe(time.Since(start))
}

func (p *Packed) run() { p.runWords(p.words) }

// runWords propagates only the first live pattern words through the
// logic — the batching service's partial-cycle path: blocks pack
// contiguously from word 0, so a half-filled shared engine costs half
// an engine run, not a full one. Words beyond live keep whatever stale
// values they held. live == p.words is exactly Run.
func (p *Packed) runWords(live int) {
	if live > p.words {
		live = p.words
	}
	p.met.packedRuns.Inc()
	p.met.packedVectors.Add(int64(64 * live))
	shards := p.shardCount(live)
	if shards <= 1 {
		// Word-sharding can't engage (narrow batch). On a big program
		// with a worker budget, cut along level bands instead: one
		// giant netlist's levels split across cores (see program.go).
		if p.workers > 1 && p.prog.levelEnd != nil && len(p.prog.ops) >= levelParMinOps {
			p.met.levelRuns.Inc()
			runProgramLevels(p.prog.ops, p.prog.levelEnd, p.vals, p.words, live, p.workers)
			return
		}
		runProgram(p.prog.ops, p.vals, p.words, 0, live)
		return
	}
	p.met.packedShards.Add(int64(shards))
	// A panic in a shard goroutine would kill the whole process (no
	// deferred recover can catch a panic on another goroutine), so each
	// shard captures its panic and the first one is re-raised here on
	// the caller's goroutine, where stage-level containment can demote
	// it to an error.
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	for s := 0; s < shards; s++ {
		lo := s * live / shards
		hi := (s + 1) * live / shards
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			runProgram(p.prog.ops, p.vals, p.words, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// shardCount resolves the effective shard count for a run over live
// words: never more than the worker budget, and never so many that a
// shard drops below minShardWords.
func (p *Packed) shardCount(live int) int {
	shards := p.workers
	if max := live / minShardWords; shards > max {
		shards = max
	}
	return shards
}

// Step advances the sequential view by one clock: Run, then latch each
// DFF's data-input word into the DFF state for the next cycle.
func (p *Packed) Step() {
	p.Run()
	W := p.words
	for i, d := range p.dffs {
		if p.dffSrc[i] == netlist.InvalidGate {
			continue
		}
		src := p.row(p.dffSrc[i]) * W
		dst := p.row(d) * W
		copy(p.vals[dst:dst+W], p.vals[src:src+W])
	}
}

// CountOnes adds, for every gate, the number of patterns on which the
// gate evaluated to 1 into counts (len == NumGates). Call after Run.
// limit caps the number of patterns counted (use Patterns() for all).
func (p *Packed) CountOnes(counts []int64, limit int) {
	W := p.words
	fullWords := limit / 64
	remBits := limit % 64
	for g := 0; g < p.prog.numGates; g++ {
		base := p.row(netlist.GateID(g)) * W
		var c int
		for w := 0; w < fullWords; w++ {
			c += bits.OnesCount64(p.vals[base+w])
		}
		if remBits > 0 {
			mask := (uint64(1) << uint(remBits)) - 1
			c += bits.OnesCount64(p.vals[base+fullWords] & mask)
		}
		counts[g] += int64(c)
	}
}
