package sim

import (
	"math/rand"
	"testing"

	"cghti/internal/gen"
	"cghti/internal/netlist"
)

// runWithWorkers simulates one randomized batch on a fresh engine with
// the given worker count and returns every gate's words.
func runWithWorkers(t *testing.T, n *netlist.Netlist, words, workers int, seed int64) []uint64 {
	t.Helper()
	p, err := NewPackedWorkers(n, words, workers)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(seed)))
	p.Run()
	out := make([]uint64, n.NumGates()*words)
	for g := 0; g < n.NumGates(); g++ {
		for w := 0; w < words; w++ {
			out[g*words+w] = p.Word(netlist.GateID(g), w)
		}
	}
	return out
}

// TestRunWorkersBitIdentical is the determinism contract: for the same
// input patterns, the sharded Run produces bit-identical words for any
// worker count, on random netlists and on real benchmark circuits.
func TestRunWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var circuits []*netlist.Netlist
	for i := 0; i < 6; i++ {
		circuits = append(circuits, randomNetlist(rng, 3+rng.Intn(12), 5+rng.Intn(60)))
	}
	for _, name := range []string{"c432", "c880"} {
		n, err := gen.Benchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, n)
	}
	for ci, n := range circuits {
		for _, words := range []int{1, 3, 16, 32} {
			ref := runWithWorkers(t, n, words, 1, int64(100+ci))
			for _, workers := range []int{2, 8} {
				got := runWithWorkers(t, n, words, workers, int64(100+ci))
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("circuit %d (%s) words=%d workers=%d: word %d differs: %#x vs %#x",
							ci, n.Name, words, workers, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// TestSetWorkersDoesNotChangeState flips the worker knob between runs on
// one engine and checks the outputs stay identical.
func TestSetWorkersDoesNotChangeState(t *testing.T) {
	n, err := gen.Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPacked(n, 16)
	if err != nil {
		t.Fatal(err)
	}
	p.Randomize(rand.New(rand.NewSource(3)))
	outs := n.CombOutputs()
	var ref []uint64
	for _, workers := range []int{1, 4, 2, 8, 1} {
		p.SetWorkers(workers)
		p.Run()
		var got []uint64
		for _, id := range outs {
			for w := 0; w < p.Words(); w++ {
				got = append(got, p.Word(id, w))
			}
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: output word %d changed: %#x vs %#x", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestAcquireReleaseReusesEngine(t *testing.T) {
	DrainPackedPool()
	n, err := gen.Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := AcquirePacked(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	p1.SetWorkers(8)
	ReleasePacked(p1)
	p2, err := AcquirePacked(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Error("pool did not recycle the released engine")
	}
	if p2.Workers() != 1 {
		t.Errorf("recycled engine workers = %d, want reset to 1", p2.Workers())
	}
	// Different word count must not hit the same pool entry.
	p3, err := AcquirePacked(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p2 {
		t.Error("pool returned an engine with the wrong word count")
	}
	if p3.Words() != 8 {
		t.Errorf("Words() = %d, want 8", p3.Words())
	}
	ReleasePacked(p2)
	ReleasePacked(p3)
	ReleasePacked(nil) // must be a no-op
	DrainPackedPool()
}

// TestPooledEngineComputesFreshValues guards against stale-state bugs:
// a recycled engine loaded with new inputs must produce the same words
// as a brand-new engine.
func TestPooledEngineComputesFreshValues(t *testing.T) {
	DrainPackedPool()
	n, err := gen.Benchmark("c880")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := AcquirePacked(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1.Randomize(rand.New(rand.NewSource(1)))
	p1.Run()
	ReleasePacked(p1)

	recycled, err := AcquirePacked(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePacked(recycled)
	fresh, err := NewPacked(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	recycled.Randomize(rand.New(rand.NewSource(2)))
	fresh.Randomize(rand.New(rand.NewSource(2)))
	recycled.Run()
	fresh.Run()
	for g := 0; g < n.NumGates(); g++ {
		for w := 0; w < 2; w++ {
			if recycled.Word(netlist.GateID(g), w) != fresh.Word(netlist.GateID(g), w) {
				t.Fatalf("gate %d word %d: recycled engine differs from fresh", g, w)
			}
		}
	}
}
