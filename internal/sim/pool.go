package sim

import (
	"sync"

	"cghti/internal/netlist"
)

// Engine pooling. Building a Packed costs a topological sort, a program
// compile (or a registry hit) and a len(gates)*words word array; callers
// that simulate in rounds (rare extraction batches, MERO pool scoring,
// the per-target loop of detection evaluation) would otherwise pay that
// on every round. AcquirePacked recycles engines per (netlist, words)
// pair.
//
// The pool is bounded: at most poolPerKey idle engines per key and
// poolMaxKeys keys; beyond that, releases are dropped (closing the
// engine's program lease) and acquires build fresh engines. Pooled
// engines keep their stale word values — callers must fully set the
// inputs they read back (Randomize and the batch loaders all do),
// exactly as they must between two Runs of a long-lived engine.
//
// Staleness: the pool key is the *Netlist pointer, but a netlist can be
// mutated in place after an engine was pooled for it (trojan insertion
// adds gates to the very netlist a pre-insertion extraction simulated).
// A pooled engine whose program was compiled for the old shape would
// index out of range — or worse, silently simulate the old logic — so
// AcquirePacked validates the engine's compiled shape (gate count, edge
// count, word count) against the netlist as it is now and recompiles on
// any mismatch instead of returning the stale engine.

const (
	poolPerKey  = 4
	poolMaxKeys = 64
)

type poolKey struct {
	n     *netlist.Netlist
	words int
}

var packedPool = struct {
	sync.Mutex
	free map[poolKey][]*Packed
}{free: make(map[poolKey][]*Packed)}

// stale reports whether the engine's compiled program no longer matches
// the netlist's current shape (or the requested word count). Gate and
// edge counts are O(gates) to recount and catch every structural
// mutation that changes the arena layout — the failure mode that turns
// a stale program into out-of-range indexing.
func (p *Packed) stale(n *netlist.Netlist, words int) bool {
	if p.words != words || p.prog.numGates != len(n.Gates) {
		return true
	}
	edges := 0
	for i := range n.Gates {
		edges += len(n.Gates[i].Fanin)
	}
	return p.prog.numEdges != edges
}

// AcquirePacked returns a pooled engine for (n, words), building one if
// the pool has none or the pooled engine's program was compiled for a
// different shape of n (see staleness note above). The engine comes
// back with a serial worker budget; call SetWorkers to shard. Pass it
// to ReleasePacked when done.
func AcquirePacked(n *netlist.Netlist, words int) (*Packed, error) {
	packedPool.Lock()
	key := poolKey{n: n, words: words}
	if list := packedPool.free[key]; len(list) > 0 {
		p := list[len(list)-1]
		packedPool.free[key] = list[:len(list)-1]
		packedPool.Unlock()
		if p.stale(n, words) {
			p.Close()
			return NewPacked(n, words)
		}
		p.SetWorkers(1)
		// A pooled engine may have been released by a run with a scoped
		// registry; reset so its counters never leak into another run.
		p.SetRegistry(nil)
		return p, nil
	}
	packedPool.Unlock()
	return NewPacked(n, words)
}

// ReleasePacked returns an engine to the pool. Safe to call with nil.
// Engines the pool cannot hold are closed (their shared-program lease
// is released).
func ReleasePacked(p *Packed) {
	if p == nil {
		return
	}
	packedPool.Lock()
	defer packedPool.Unlock()
	key := poolKey{n: p.n, words: p.words}
	list := packedPool.free[key]
	if len(list) >= poolPerKey {
		p.Close()
		return
	}
	if _, ok := packedPool.free[key]; !ok && len(packedPool.free) >= poolMaxKeys {
		// Too many distinct netlists cached (e.g. a long Table-2 sweep
		// over hundreds of infected circuits): drop everything rather
		// than pinning dead netlists in memory.
		for _, l := range packedPool.free {
			for _, q := range l {
				q.Close()
			}
		}
		packedPool.free = make(map[poolKey][]*Packed)
		list = nil
	}
	packedPool.free[key] = append(list, p)
}

// DrainPackedPool empties the engine pool (used by tests and
// memory-sensitive callers), closing every pooled engine's program
// lease.
func DrainPackedPool() {
	packedPool.Lock()
	defer packedPool.Unlock()
	for _, l := range packedPool.free {
		for _, q := range l {
			q.Close()
		}
	}
	packedPool.free = make(map[poolKey][]*Packed)
}
