package sim

import (
	"sync"

	"cghti/internal/netlist"
)

// Engine pooling. Building a Packed costs a topological sort, a program
// compile and a len(gates)*words word array; callers that simulate in
// rounds (rare extraction batches, MERO pool scoring, the per-target
// loop of detection evaluation) would otherwise pay that on every
// round. AcquirePacked recycles engines per (netlist, words) pair.
//
// The pool is bounded: at most poolPerKey idle engines per key and
// poolMaxKeys keys; beyond that, releases are dropped and acquires
// build fresh engines. Pooled engines keep their stale word values —
// callers must fully set the inputs they read back (Randomize and the
// batch loaders all do), exactly as they must between two Runs of a
// long-lived engine.

const (
	poolPerKey  = 4
	poolMaxKeys = 64
)

type poolKey struct {
	n     *netlist.Netlist
	words int
}

var packedPool = struct {
	sync.Mutex
	free map[poolKey][]*Packed
}{free: make(map[poolKey][]*Packed)}

// AcquirePacked returns a pooled engine for (n, words), building one if
// the pool has none. The engine comes back with a serial worker budget;
// call SetWorkers to shard. Pass it to ReleasePacked when done.
func AcquirePacked(n *netlist.Netlist, words int) (*Packed, error) {
	packedPool.Lock()
	key := poolKey{n: n, words: words}
	if list := packedPool.free[key]; len(list) > 0 {
		p := list[len(list)-1]
		packedPool.free[key] = list[:len(list)-1]
		packedPool.Unlock()
		p.SetWorkers(1)
		// A pooled engine may have been released by a run with a scoped
		// registry; reset so its counters never leak into another run.
		p.SetRegistry(nil)
		return p, nil
	}
	packedPool.Unlock()
	return NewPacked(n, words)
}

// ReleasePacked returns an engine to the pool. Safe to call with nil.
func ReleasePacked(p *Packed) {
	if p == nil {
		return
	}
	packedPool.Lock()
	defer packedPool.Unlock()
	key := poolKey{n: p.n, words: p.words}
	list := packedPool.free[key]
	if len(list) >= poolPerKey {
		return
	}
	if _, ok := packedPool.free[key]; !ok && len(packedPool.free) >= poolMaxKeys {
		// Too many distinct netlists cached (e.g. a long Table-2 sweep
		// over hundreds of infected circuits): drop everything rather
		// than pinning dead netlists in memory.
		packedPool.free = make(map[poolKey][]*Packed)
		list = nil
	}
	packedPool.free[key] = append(list, p)
}

// DrainPackedPool empties the engine pool (used by tests and
// memory-sensitive callers).
func DrainPackedPool() {
	packedPool.Lock()
	defer packedPool.Unlock()
	packedPool.free = make(map[poolKey][]*Packed)
}
