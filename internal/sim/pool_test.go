package sim

import (
	"math/rand"
	"testing"

	"cghti/internal/netlist"
)

// TestAcquirePackedStaleAfterMutation is the regression test for the
// pool staleness bug: an engine pooled for a netlist that is then
// mutated in place (the exact shape trojan insertion produces — new
// gates appended to the simulated netlist) must not come back stale.
// Before the fix, AcquirePacked returned the old engine and SetWord on
// a newly added gate indexed out of range.
func TestAcquirePackedStaleAfterMutation(t *testing.T) {
	DrainPackedPool()
	n := mkC17(t)
	p, err := AcquirePacked(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	oldGates := p.prog.numGates
	ReleasePacked(p)

	// Mutate the pooled netlist: append an inverter on a PI and mark it
	// a PO, as an insertion pass would.
	extra := n.MustAddGate("trojan_tap", netlist.Not)
	n.Connect(n.PIs[0], extra)
	n.MarkPO(extra)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}

	p2, err := AcquirePacked(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePacked(p2)
	if p2.prog.numGates != len(n.Gates) {
		t.Fatalf("acquired engine compiled for %d gates, netlist has %d (stale pool hit, was %d)",
			p2.prog.numGates, len(n.Gates), oldGates)
	}
	// The new gate must be addressable and simulate correctly.
	p2.Randomize(rand.New(rand.NewSource(1)))
	p2.Run()
	if got, want := p2.Word(extra, 0), ^p2.Word(n.PIs[0], 0); got != want {
		t.Fatalf("new gate simulates %x, want %x", got, want)
	}
}

// TestAcquirePackedEdgeMutation: a rewire that keeps the gate count but
// changes the edge count is also detected.
func TestAcquirePackedEdgeMutation(t *testing.T) {
	DrainPackedPool()
	n := mkC17(t)
	p, err := AcquirePacked(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	ReleasePacked(p)

	// Add a third fanin to a NAND (arity stays legal).
	target := n.MustLookup("22")
	n.Connect(n.MustLookup("19"), target)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}

	p2, err := AcquirePacked(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePacked(p2)
	edges := 0
	for i := range n.Gates {
		edges += len(n.Gates[i].Fanin)
	}
	if p2.prog.numEdges != edges {
		t.Fatalf("acquired engine compiled for %d edges, netlist has %d", p2.prog.numEdges, edges)
	}
}

// TestPoolRoundTripStillShares: the staleness check must not defeat
// pooling — an unmutated netlist still gets its engine back.
func TestPoolRoundTripStillShares(t *testing.T) {
	DrainPackedPool()
	n := mkC17(t)
	p, err := AcquirePacked(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	ReleasePacked(p)
	p2, err := AcquirePacked(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ReleasePacked(p2)
	if p2 != p {
		t.Fatal("unmutated netlist did not reuse the pooled engine")
	}
}
