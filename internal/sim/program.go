package sim

import (
	"sync"

	"cghti/internal/netlist"
	"cghti/internal/obs"
)

// Program is an immutable compiled simulation program: the op list that
// runProgram executes, plus the levelized band boundaries the
// level-parallel runner needs and the structural hashes the registry
// uses to map isomorphic netlists onto it. One Program is shared by
// every Packed lease whose netlist has the same structural fingerprint;
// all per-caller state (value words, word/worker shape, meters) lives
// on the lease. Nothing here is written after compile, so concurrent
// Runs over one Program need no synchronization.
type Program struct {
	ops      []op
	levelEnd []int32  // ops index ending each level band; nil if bands unavailable
	numGates int      // gate count of the founding netlist (= rows)
	numEdges int      // fanin arena length of the founding netlist
	hash     uint64   // netlist-level structural fingerprint (registry key)
	gateHash []uint64 // per-row canonical structural hash

	// Registry bookkeeping, guarded by progRegistry.mu. refs counts
	// live leases (incremented by sharedProgram, decremented by
	// Packed.Close); eviction prefers unreferenced programs but is
	// always safe — an evicted Program stays alive through the leases
	// that hold it, the registry only loses future dedupe.
	refs    int
	lastUse uint64
}

// Ops returns the compiled op count (used by sizing heuristics and
// tests).
func (p *Program) Ops() int { return len(p.ops) }

// Hash returns the structural fingerprint the program is registered
// under.
func (p *Program) Hash() uint64 { return p.hash }

// maxSharedPrograms bounds the registry. Beyond it the least recently
// used program is evicted (unreferenced first); engines holding evicted
// programs are unaffected.
const maxSharedPrograms = 128

var (
	sharedHits      = obs.Default().Counter("sim.shared_program_hits")
	sharedMisses    = obs.Default().Counter("sim.shared_program_misses")
	sharedEvictions = obs.Default().Counter("sim.shared_program_evictions")
)

var progRegistry = struct {
	mu     sync.Mutex
	byHash map[uint64]*Program
	tick   uint64
}{byHash: make(map[uint64]*Program)}

// compileShared lowers c into a fresh Program (ops, level bands,
// structural hashes) without touching the registry.
func compileShared(c *netlist.Compact, gh []uint64, hash uint64) (*Program, error) {
	topo, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	p := &Program{
		ops:      compileProgram(c, topo),
		numGates: c.NumGates(),
		numEdges: c.NumEdges(),
		hash:     hash,
		gateHash: gh,
	}
	p.levelEnd = levelBands(c, p.ops)
	return p, nil
}

// levelBands slices the op list into logic-level bands: band k is
// ops[levelEnd[k-1]:levelEnd[k]] and contains only gates of one level,
// so ops within a band never read each other's outputs and a band can
// split across goroutines. Kahn's FIFO ordering emits levels
// non-decreasingly in practice; this is verified op-by-op, and if the
// order ever interleaves levels the bands are dropped (nil) and the
// level-parallel runner simply stays off — correctness never depends
// on the band structure existing.
func levelBands(c *netlist.Compact, ops []op) []int32 {
	if len(ops) == 0 {
		return nil
	}
	var bands []int32
	prev := c.Level[ops[0].out]
	for i := range ops {
		l := c.Level[ops[i].out]
		if l < prev {
			return nil
		}
		if l > prev {
			bands = append(bands, int32(i))
			prev = l
		}
	}
	return append(bands, int32(len(ops)))
}

// sharedProgram returns the registry's Program for c's structural
// fingerprint, compiling and registering one on first sight. The
// returned slot maps caller gate IDs to program rows (nil when the
// mapping is the identity). The caller owns one reference; release it
// with Packed.Close (ReleasePacked and the pool do this on drop).
func sharedProgram(c *netlist.Compact) (*Program, []int32, error) {
	gh, err := gateHashes(c)
	if err != nil {
		return nil, nil, err
	}
	hash := netlistHash(c, gh)

	progRegistry.mu.Lock()
	if p := progRegistry.byHash[hash]; p != nil {
		if slot, ok := slotFor(p, gh); ok {
			p.refs++
			progRegistry.tick++
			p.lastUse = progRegistry.tick
			progRegistry.mu.Unlock()
			sharedHits.Inc()
			return p, slot, nil
		}
		// Fingerprint collision with an incompatible hash multiset
		// (astronomically unlikely): fall through and compile privately
		// below, without registering.
		progRegistry.mu.Unlock()
		sharedMisses.Inc()
		p2, err := compileShared(c, gh, hash)
		if err != nil {
			return nil, nil, err
		}
		p2.refs = 1
		return p2, nil, nil
	}
	progRegistry.mu.Unlock()

	// Compile outside the lock: million-gate compiles must not serialize
	// every other caller's registry lookup.
	sharedMisses.Inc()
	p, err := compileShared(c, gh, hash)
	if err != nil {
		return nil, nil, err
	}

	progRegistry.mu.Lock()
	defer progRegistry.mu.Unlock()
	if won := progRegistry.byHash[hash]; won != nil {
		// Another goroutine registered the same structure while we
		// compiled; prefer theirs so all leases share one artifact.
		if slot, ok := slotFor(won, gh); ok {
			won.refs++
			progRegistry.tick++
			won.lastUse = progRegistry.tick
			return won, slot, nil
		}
		p.refs = 1
		return p, nil, nil
	}
	for len(progRegistry.byHash) >= maxSharedPrograms {
		evictLockedLRU()
	}
	progRegistry.tick++
	p.lastUse = progRegistry.tick
	p.refs = 1
	progRegistry.byHash[hash] = p
	return p, nil, nil
}

// slotFor maps caller gate hashes ch onto p's rows by pairing
// equal-hash gates in order. Equal structural hash implies bit-equal
// simulation words, so any pairing within a hash group is
// simulation-sound. Returns ok=false when the multisets differ.
func slotFor(p *Program, ch []uint64) ([]int32, bool) {
	return buildSlot(p.gateHash, ch)
}

// evictLockedLRU drops one program from the registry: the least
// recently used unreferenced one, or — if every entry is still leased —
// the least recently used overall (safe: leases keep their pointer,
// only future dedupe is lost). Caller holds progRegistry.mu.
func evictLockedLRU() {
	var victim *Program
	for _, p := range progRegistry.byHash {
		if p.refs > 0 {
			continue
		}
		if victim == nil || p.lastUse < victim.lastUse {
			victim = p
		}
	}
	if victim == nil {
		for _, p := range progRegistry.byHash {
			if victim == nil || p.lastUse < victim.lastUse {
				victim = p
			}
		}
	}
	if victim == nil {
		return
	}
	delete(progRegistry.byHash, victim.hash)
	sharedEvictions.Inc()
}

// releaseProgram drops one lease reference.
func releaseProgram(p *Program) {
	if p == nil {
		return
	}
	progRegistry.mu.Lock()
	if p.refs > 0 {
		p.refs--
	}
	progRegistry.mu.Unlock()
}

// SharedProgramStats reports the registry size and total live lease
// references (tests and sizing diagnostics).
func SharedProgramStats() (programs, refs int) {
	progRegistry.mu.Lock()
	defer progRegistry.mu.Unlock()
	for _, p := range progRegistry.byHash {
		refs += p.refs
	}
	return len(progRegistry.byHash), refs
}

// DrainProgramRegistry empties the shared-program registry (tests).
// Live leases keep working; only dedupe state is reset.
func DrainProgramRegistry() {
	progRegistry.mu.Lock()
	defer progRegistry.mu.Unlock()
	progRegistry.byHash = make(map[uint64]*Program)
}

// Level-parallel execution. Word-sharding (PR 2) is the cheap
// parallelism: disjoint word blocks need no synchronization at all. It
// stalls when the batch is narrow (words < 2*minShardWords) — exactly
// the shape a giant netlist with a small pattern budget has. For that
// regime the level bands give an orthogonal cut: every op inside one
// band writes its own row and reads only rows of earlier bands, so a
// band's ops can split across workers with one barrier per band.
// Values are fully determined by the inputs regardless of evaluation
// order, so this is bit-identical to the serial run.

const (
	// levelParMinOps gates the whole mechanism: below this the
	// per-band barriers cost more than the kernels.
	levelParMinOps = 32768
	// levelParMinBandOps is the smallest per-worker op share worth a
	// goroutine dispatch inside one band.
	levelParMinBandOps = 2048
)

// runProgramLevels evaluates prog over the first live pattern words
// (stride W), splitting each level band across up to workers
// goroutines. levelEnd must be the program's band table.
func runProgramLevels(prog []op, levelEnd []int32, vals []uint64, W, live, workers int) {
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicVal any
	start := int32(0)
	for _, end := range levelEnd {
		band := prog[start:end]
		start = end
		nw := len(band) / levelParMinBandOps
		if nw > workers {
			nw = workers
		}
		if nw <= 1 {
			runProgram(band, vals, W, 0, live)
			continue
		}
		for s := 0; s < nw; s++ {
			lo := s * len(band) / nw
			hi := (s + 1) * len(band) / nw
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(ops []op) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panicOnce.Do(func() { panicVal = r })
					}
				}()
				runProgram(ops, vals, W, 0, live)
			}(band[lo:hi])
		}
		wg.Wait()
		if panicVal != nil {
			panic(panicVal)
		}
	}
}
