package sim

import (
	"fmt"

	"cghti/internal/netlist"
)

// EvalGate computes the two-valued output of a gate type over scalar
// inputs (each 0 or 1). It is the reference semantics that every other
// simulator in this package is tested against.
func EvalGate(t netlist.GateType, in []uint8) uint8 {
	switch t {
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return 1
	case netlist.Buf, netlist.DFF:
		return in[0]
	case netlist.Not:
		return in[0] ^ 1
	case netlist.And, netlist.Nand:
		acc := uint8(1)
		for _, v := range in {
			acc &= v
		}
		if t == netlist.Nand {
			acc ^= 1
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := uint8(0)
		for _, v := range in {
			acc |= v
		}
		if t == netlist.Nor {
			acc ^= 1
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := uint8(0)
		for _, v := range in {
			acc ^= v
		}
		if t == netlist.Xnor {
			acc ^= 1
		}
		return acc
	}
	panic(fmt.Sprintf("sim: EvalGate on %v", t))
}

// Eval runs a scalar two-valued simulation. inputs maps every
// combinational input (PI and DFF) ID to its value; the returned slice
// holds the value of every gate, indexed by GateID.
func Eval(n *netlist.Netlist, inputs map[netlist.GateID]uint8) ([]uint8, error) {
	topo, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	vals := make([]uint8, len(n.Gates))
	for _, id := range topo {
		g := &n.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			v, ok := inputs[id]
			if !ok {
				return nil, fmt.Errorf("sim: no value for input %q", g.Name)
			}
			vals[id] = v & 1
		default:
			in := make([]uint8, len(g.Fanin))
			for i, f := range g.Fanin {
				in[i] = vals[f]
			}
			vals[id] = EvalGate(g.Type, in)
		}
	}
	return vals, nil
}
