package sim

import (
	"context"
	"math/rand"

	"cghti/internal/netlist"
	"cghti/internal/obs"
)

// Service is the simulation submission interface the pipeline layers
// program against: instead of constructing engines, a caller describes
// one pattern block — which netlist, how many 64-pattern words, how to
// fill the input words and how to read the results — and the service
// decides where it executes. Two implementations exist:
//
//   - Exclusive (the default, and what ServiceFor returns for a bare
//     context): each block runs on a pooled engine owned by the caller
//     for the duration of the call. This is exactly the pre-service
//     behavior, with the engine pool and shared-program registry
//     underneath.
//   - Batcher (batcher.go): blocks from many callers — different jobs
//     in the serving daemon — are packed side by side into the word
//     range of one wide engine per compiled program, so concurrent
//     small jobs fill the idle bit-lanes instead of each running a
//     mostly-empty engine.
//
// Results are bit-identical across implementations and any batching
// arrangement: a block's Fill and Read see only its own word window,
// every word is computed by the same compiled kernel sequence wherever
// it lands, and the fill order (and therefore any RNG draw order) is
// the caller's own.
type Service interface {
	// Simulate executes one pattern block: Fill is called with a
	// writable block of Words() == req.Words, the block is simulated,
	// and Read is called with the results. Fill and Read run on the
	// service's goroutine and must not retain the Block. Returns
	// ctx.Err() when the context is canceled before the block ran
	// (after Fill was called the block may still execute).
	Simulate(ctx context.Context, req *Request) error
}

// Request describes one pattern block.
type Request struct {
	// Netlist is the circuit to simulate. Gate IDs passed to the Block
	// accessors are this netlist's IDs, wherever the block executes.
	Netlist *netlist.Netlist
	// Words is the block width in 64-pattern words (>= 1).
	Words int
	// Workers is the engine goroutine budget used when the block runs
	// on an exclusive engine (1 = serial, 0 = GOMAXPROCS). A batching
	// service may ignore it — parallelism there comes from packing
	// blocks side by side.
	Workers int
	// Fill loads the block's input/state words. Required.
	Fill func(Block)
	// Read extracts results after simulation. Required.
	Read func(Block)
}

// Block is the view of a pattern block a Request's Fill and Read
// callbacks operate on. Gate IDs are the request netlist's IDs; word
// indexes are block-relative (0 <= w < Words). A block's words may be a
// window into a wider shared engine — neighbouring words belong to
// other callers and are never visible here.
type Block interface {
	// Words is the block width in 64-pattern words.
	Words() int
	// Patterns is 64 * Words.
	Patterns() int
	// SetWord sets pattern word w of gate id (a PI or DFF).
	SetWord(id netlist.GateID, w int, bits uint64)
	// Word returns pattern word w of gate id after simulation.
	Word(id netlist.GateID, w int) uint64
	// SetBit sets pattern pat (0 <= pat < Patterns) of gate id.
	SetBit(id netlist.GateID, pat int, v bool)
	// Bit returns pattern pat of gate id.
	Bit(id netlist.GateID, pat int) bool
	// CountOnes adds each gate's one-count over the first limit
	// patterns into counts (indexed by gate ID).
	CountOnes(counts []int64, limit int)
}

// *Packed implements Block directly: an exclusive engine is its own
// one-caller block.
var _ Block = (*Packed)(nil)

// FillRandom fills every gate in inputs with uniform random words from
// rng, in input order, word-ascending — the same fixed draw order as
// Packed.Randomize, so a service submission draws exactly the vectors
// the direct engine path drew.
func FillRandom(b Block, inputs []netlist.GateID, rng *rand.Rand) {
	words := b.Words()
	for _, id := range inputs {
		for w := 0; w < words; w++ {
			b.SetWord(id, w, rng.Uint64())
		}
	}
}

// Exclusive is the default Service: every block gets a pooled engine of
// its own for the duration of the call. The zero value is ready to use.
type Exclusive struct{}

// Simulate runs the block on a pooled engine, attributing simulation
// metrics to the registry carried by ctx (per-run scoping).
func (Exclusive) Simulate(ctx context.Context, req *Request) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := AcquirePacked(req.Netlist, req.Words)
	if err != nil {
		return err
	}
	defer ReleasePacked(p)
	p.SetWorkers(req.Workers)
	p.SetRegistry(obs.FromContext(ctx))
	req.Fill(p)
	p.Run()
	req.Read(p)
	return nil
}

type serviceCtxKey struct{}

// WithService returns a context whose simulation submissions route to
// s. The serving daemon mounts its process-wide batching service this
// way; library callers normally leave the context bare and get the
// exclusive pooled path.
func WithService(ctx context.Context, s Service) context.Context {
	return context.WithValue(ctx, serviceCtxKey{}, s)
}

// ServiceFor returns the Service carried by ctx, or the default
// Exclusive service.
func ServiceFor(ctx context.Context) Service {
	if s, ok := ctx.Value(serviceCtxKey{}).(Service); ok && s != nil {
		return s
	}
	return Exclusive{}
}

type jobKeyCtxKey struct{}

// WithJobKey tags ctx with a fair-share scheduling key. A batching
// service packs at most one queued block per key into each engine
// cycle, so one huge job cannot starve concurrent small ones. The
// daemon uses the job ID; an empty key (bare context) is its own
// class.
func WithJobKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, jobKeyCtxKey{}, key)
}

// JobKeyFor returns the fair-share key carried by ctx ("" if none).
func JobKeyFor(ctx context.Context) string {
	if k, ok := ctx.Value(jobKeyCtxKey{}).(string); ok {
		return k
	}
	return ""
}
