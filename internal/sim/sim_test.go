package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cghti/internal/netlist"
)

// mkC17 builds c17 programmatically (NAND-only ISCAS85 circuit).
func mkC17(t testing.TB) *netlist.Netlist {
	t.Helper()
	n := netlist.New("c17")
	names := []string{"1", "2", "3", "6", "7"}
	for _, nm := range names {
		n.MustAddGate(nm, netlist.Input)
	}
	add := func(name string, a, b string) {
		id := n.MustAddGate(name, netlist.Nand)
		n.Connect(n.MustLookup(a), id)
		n.Connect(n.MustLookup(b), id)
	}
	add("10", "1", "3")
	add("11", "3", "6")
	add("16", "2", "11")
	add("19", "11", "7")
	add("22", "10", "16")
	add("23", "16", "19")
	n.MarkPO(n.MustLookup("22"))
	n.MarkPO(n.MustLookup("23"))
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestEvalGateTruthTables(t *testing.T) {
	cases := []struct {
		t    netlist.GateType
		in   []uint8
		want uint8
	}{
		{netlist.And, []uint8{1, 1}, 1},
		{netlist.And, []uint8{1, 0}, 0},
		{netlist.Nand, []uint8{1, 1}, 0},
		{netlist.Nand, []uint8{0, 1}, 1},
		{netlist.Or, []uint8{0, 0}, 0},
		{netlist.Or, []uint8{0, 1}, 1},
		{netlist.Nor, []uint8{0, 0}, 1},
		{netlist.Nor, []uint8{1, 0}, 0},
		{netlist.Xor, []uint8{1, 1}, 0},
		{netlist.Xor, []uint8{1, 0}, 1},
		{netlist.Xor, []uint8{1, 1, 1}, 1},
		{netlist.Xnor, []uint8{1, 0}, 0},
		{netlist.Xnor, []uint8{1, 1}, 1},
		{netlist.Not, []uint8{0}, 1},
		{netlist.Buf, []uint8{1}, 1},
		{netlist.Const0, nil, 0},
		{netlist.Const1, nil, 1},
		{netlist.And, []uint8{1, 1, 1, 1}, 1},
		{netlist.And, []uint8{1, 1, 0, 1}, 0},
	}
	for _, tc := range cases {
		if got := EvalGate(tc.t, tc.in); got != tc.want {
			t.Errorf("EvalGate(%v, %v) = %d, want %d", tc.t, tc.in, got, tc.want)
		}
	}
}

func TestEvalC17KnownVector(t *testing.T) {
	n := mkC17(t)
	// All-ones input: 10=NAND(1,1)=0, 11=0, 16=NAND(1,0)=1, 19=1,
	// 22=NAND(0,1)=1, 23=NAND(1,1)=0.
	in := map[netlist.GateID]uint8{}
	for _, pi := range n.PIs {
		in[pi] = 1
	}
	vals, err := Eval(n, in)
	if err != nil {
		t.Fatal(err)
	}
	if got := vals[n.MustLookup("22")]; got != 1 {
		t.Errorf("22 = %d, want 1", got)
	}
	if got := vals[n.MustLookup("23")]; got != 0 {
		t.Errorf("23 = %d, want 0", got)
	}
}

func TestPackedMatchesScalarC17Exhaustive(t *testing.T) {
	n := mkC17(t)
	p, err := NewPacked(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All 32 input combinations in one 64-bit word.
	for i, pi := range n.PIs {
		var w uint64
		for pat := 0; pat < 32; pat++ {
			if pat>>uint(i)&1 == 1 {
				w |= 1 << uint(pat)
			}
		}
		p.SetWord(pi, 0, w)
	}
	p.Run()
	for pat := 0; pat < 32; pat++ {
		in := map[netlist.GateID]uint8{}
		for i, pi := range n.PIs {
			in[pi] = uint8(pat >> uint(i) & 1)
		}
		want, err := Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		for g := range n.Gates {
			got := uint8(0)
			if p.Bit(netlist.GateID(g), pat) {
				got = 1
			}
			if got != want[g] {
				t.Fatalf("pattern %d gate %s: packed %d, scalar %d",
					pat, n.Gates[g].Name, got, want[g])
			}
		}
	}
}

// TestPackedMatchesScalarRandomCircuits is the property pinning the
// bit-parallel simulator against the reference evaluator on random
// circuits and random patterns.
func TestPackedMatchesScalarRandomCircuits(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng, 4+rng.Intn(5), 20+rng.Intn(60))
		p, err := NewPacked(n, 2)
		if err != nil {
			return false
		}
		p.Randomize(rng)
		p.Run()
		for pat := 0; pat < 8; pat++ {
			in := map[netlist.GateID]uint8{}
			for _, id := range n.CombInputs() {
				if p.Bit(id, pat) {
					in[id] = 1
				} else {
					in[id] = 0
				}
			}
			want, err := Eval(n, in)
			if err != nil {
				return false
			}
			for g := range n.Gates {
				got := uint8(0)
				if p.Bit(netlist.GateID(g), pat) {
					got = 1
				}
				if got != want[g] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// randomNetlist builds a small random combinational circuit for property
// tests (local to avoid an import cycle with internal/gen).
func randomNetlist(rng *rand.Rand, pis, gates int) *netlist.Netlist {
	n := netlist.New("rand")
	ids := make([]netlist.GateID, 0, pis+gates)
	for i := 0; i < pis; i++ {
		ids = append(ids, n.MustAddGate(pinName(i), netlist.Input))
	}
	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf,
	}
	for i := 0; i < gates; i++ {
		tt := types[rng.Intn(len(types))]
		arity := 2 + rng.Intn(2)
		if tt == netlist.Not || tt == netlist.Buf {
			arity = 1
		}
		id := n.MustAddGate(gateName(i), tt)
		for a := 0; a < arity; a++ {
			n.Connect(ids[rng.Intn(len(ids))], id)
		}
		ids = append(ids, id)
	}
	n.MarkPO(ids[len(ids)-1])
	return n
}

func pinName(i int) string  { return "p" + itoa(i) }
func gateName(i int) string { return "g" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestPackedBitHelpers(t *testing.T) {
	n := mkC17(t)
	p, err := NewPacked(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Patterns() != 128 {
		t.Fatalf("Patterns = %d, want 128", p.Patterns())
	}
	id := n.PIs[0]
	p.SetBit(id, 70, true)
	if !p.Bit(id, 70) || p.Bit(id, 71) {
		t.Fatal("SetBit/Bit mismatch across word boundary")
	}
	p.SetBit(id, 70, false)
	if p.Bit(id, 70) {
		t.Fatal("SetBit(false) did not clear")
	}
}

func TestCountOnes(t *testing.T) {
	n := mkC17(t)
	p, _ := NewPacked(n, 1)
	id := n.PIs[0]
	p.SetWord(id, 0, 0b1011)
	counts := make([]int64, n.NumGates())
	p.CountOnes(counts, 64)
	if counts[id] != 3 {
		t.Fatalf("CountOnes = %d, want 3", counts[id])
	}
	// Limited to the first 2 patterns only.
	counts2 := make([]int64, n.NumGates())
	p.CountOnes(counts2, 2)
	if counts2[id] != 2 {
		t.Fatalf("CountOnes(limit=2) = %d, want 2", counts2[id])
	}
}

func TestSequentialStepToggle(t *testing.T) {
	// q = DFF(d), d = XOR(a, q): with a=1 the FF toggles every cycle.
	n := netlist.New("toggle")
	a := n.MustAddGate("a", netlist.Input)
	q := n.MustAddGate("q", netlist.DFF)
	d := n.MustAddGate("d", netlist.Xor)
	n.Connect(a, d)
	n.Connect(q, d)
	n.Connect(d, q)
	n.MarkPO(d)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := NewPacked(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.SetWord(a, 0, ^uint64(0)) // a=1 in every pattern
	p.SetWord(q, 0, 0)          // reset state
	states := []uint64{}
	for cycle := 0; cycle < 4; cycle++ {
		p.Step()
		states = append(states, p.Word(q, 0))
	}
	want := []uint64{^uint64(0), 0, ^uint64(0), 0}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("cycle %d state = %x, want %x", i, states[i], want[i])
		}
	}
}

func TestEval3Basics(t *testing.T) {
	cases := []struct {
		t    netlist.GateType
		in   []V3
		want V3
	}{
		{netlist.And, []V3{V3Zero, V3X}, V3Zero},
		{netlist.And, []V3{V3One, V3X}, V3X},
		{netlist.And, []V3{V3One, V3One}, V3One},
		{netlist.Nand, []V3{V3Zero, V3X}, V3One},
		{netlist.Or, []V3{V3One, V3X}, V3One},
		{netlist.Or, []V3{V3Zero, V3X}, V3X},
		{netlist.Nor, []V3{V3One, V3X}, V3Zero},
		{netlist.Xor, []V3{V3One, V3X}, V3X},
		{netlist.Xor, []V3{V3One, V3Zero}, V3One},
		{netlist.Xnor, []V3{V3One, V3One}, V3One},
		{netlist.Not, []V3{V3X}, V3X},
		{netlist.Not, []V3{V3Zero}, V3One},
	}
	for _, tc := range cases {
		if got := EvalGate3(tc.t, tc.in); got != tc.want {
			t.Errorf("EvalGate3(%v, %v) = %v, want %v", tc.t, tc.in, got, tc.want)
		}
	}
}

// TestEval3AgreesWithEval: on fully assigned inputs, three-valued and
// two-valued simulation must agree (property over random circuits).
func TestEval3AgreesWithEval(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng, 3+rng.Intn(4), 10+rng.Intn(40))
		in2 := map[netlist.GateID]uint8{}
		in3 := map[netlist.GateID]V3{}
		for _, id := range n.CombInputs() {
			v := uint8(rng.Intn(2))
			in2[id] = v
			in3[id] = V3(v)
		}
		want, err := Eval(n, in2)
		if err != nil {
			return false
		}
		got, err := Eval3(n, in3)
		if err != nil {
			return false
		}
		for g := range n.Gates {
			if got[g] != V3(want[g]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestEval3Monotone: a partial assignment's definite values survive any
// completion — the soundness property trigger-cube proving relies on.
func TestEval3Monotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng, 4+rng.Intn(4), 15+rng.Intn(30))
		partial := map[netlist.GateID]V3{}
		full := map[netlist.GateID]uint8{}
		for _, id := range n.CombInputs() {
			v := uint8(rng.Intn(2))
			full[id] = v
			if rng.Intn(2) == 0 {
				partial[id] = V3(v)
			}
		}
		pv, err := Eval3(n, partial)
		if err != nil {
			return false
		}
		fv, err := Eval(n, full)
		if err != nil {
			return false
		}
		for g := range n.Gates {
			if pv[g] != V3X && pv[g] != V3(fv[g]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEventMatchesPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := randomNetlist(rng, 6, 80)
	ev, err := NewEvent(n)
	if err != nil {
		t.Fatal(err)
	}
	// Apply 50 random vectors; after each, compare every gate against a
	// fresh scalar evaluation.
	for v := 0; v < 50; v++ {
		in := map[netlist.GateID]uint8{}
		for _, id := range n.CombInputs() {
			val := uint8(rng.Intn(2))
			in[id] = val
			ev.SetInput(id, val)
		}
		ev.Propagate()
		want, err := Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		for g := range n.Gates {
			if ev.Val(netlist.GateID(g)) != want[g] {
				t.Fatalf("vector %d gate %s: event %d, scalar %d",
					v, n.Gates[g].Name, ev.Val(netlist.GateID(g)), want[g])
			}
		}
	}
}

func TestEventSingleBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := randomNetlist(rng, 8, 60)
	ev, err := NewEvent(n)
	if err != nil {
		t.Fatal(err)
	}
	in := map[netlist.GateID]uint8{}
	for _, id := range n.CombInputs() {
		v := uint8(rng.Intn(2))
		in[id] = v
		ev.SetInput(id, v)
	}
	ev.Propagate()
	// Flip each input individually and verify against scalar sim.
	for _, id := range n.CombInputs() {
		in[id] ^= 1
		ev.SetInput(id, in[id])
		ev.Propagate()
		want, err := Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		for g := range n.Gates {
			if ev.Val(netlist.GateID(g)) != want[g] {
				t.Fatalf("after flip of %s, gate %s mismatch",
					n.Gates[id].Name, n.Gates[g].Name)
			}
		}
	}
}

func TestEventRedundantSetIsNoop(t *testing.T) {
	n := mkC17(t)
	ev, err := NewEvent(n)
	if err != nil {
		t.Fatal(err)
	}
	ev.SetInput(n.PIs[0], 0) // already 0
	if got := ev.Propagate(); got != 0 {
		t.Fatalf("Propagate after redundant set changed %d gates", got)
	}
}

func TestV3String(t *testing.T) {
	if V3Zero.String() != "0" || V3One.String() != "1" || V3X.String() != "X" {
		t.Fatal("V3 String broken")
	}
}

func TestEventChangedList(t *testing.T) {
	n := mkC17(t)
	ev, err := NewEvent(n)
	if err != nil {
		t.Fatal(err)
	}
	// All inputs 0 initially. Set input "1" to 1: gate 10=NAND(1,3)
	// stays 1 (3 is 0), so only the input should appear.
	ev.SetInput(n.MustLookup("1"), 1)
	ev.Propagate()
	changed := ev.Changed()
	if len(changed) != 1 || changed[0] != n.MustLookup("1") {
		t.Fatalf("changed = %v, want just input 1", changed)
	}
	// Now set "3" to 1: NAND(1,3) flips 1->0, 11=NAND(3,6) stays 1,
	// 16=NAND(2,11) stays, 22=NAND(10,16) flips 1->... verify against a
	// full snapshot diff instead of reasoning through the cone.
	before := append([]uint8(nil), ev.Values()...)
	ev.SetInput(n.MustLookup("3"), 1)
	ev.Propagate()
	changedSet := map[netlist.GateID]bool{}
	for _, id := range ev.Changed() {
		changedSet[id] = true
	}
	for g := range n.Gates {
		id := netlist.GateID(g)
		if (before[g] != ev.Val(id)) != changedSet[id] {
			t.Fatalf("gate %s: diff=%v but changed-list says %v",
				n.Gates[g].Name, before[g] != ev.Val(id), changedSet[id])
		}
	}
	// No pending events: Propagate reports nothing.
	ev.Propagate()
	if len(ev.Changed()) != 0 {
		t.Fatal("idle Propagate reported changes")
	}
}
