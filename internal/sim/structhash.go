package sim

import (
	"sort"

	"cghti/internal/netlist"
)

// Structural hashing: a Merkle-style canonical hash per gate, built so
// that two netlists that compute the same logic over the same input
// interface hash equal regardless of gate names, gate IDs, or insertion
// order. It is what lets the compiled-program registry share one
// immutable op program between structurally identical netlists (and
// between identical fanout-cone partitions of one netlist).
//
// Canonicalization rules:
//
//   - Leaves are keyed by interface position, not name: primary input i
//     hashes as a function of i (its position in the PI declaration
//     order), DFF state j as a function of j. The interface order IS
//     part of the structure — it is also the order every simulation
//     fill walks — so two netlists only unify when their input words
//     line up positionally.
//   - An internal gate hashes (type, fanin hashes). For the commutative
//     types (AND/NAND/OR/NOR/XOR/XNOR) the fanin hashes are sorted
//     first, so operand order does not break sharing; for BUF/NOT port
//     order is trivially fixed.
//   - The netlist hash folds the gate count, interface arity, the PO
//     driver hashes in output order, the DFF data-driver hashes in DFF
//     order, and an order-invariant multiset digest of every gate hash.
//
// Equal gate hashes imply (modulo 64-bit collision) identical
// expression trees over identical input leaves — so two gates with the
// same hash carry bit-identical value words under any simulation. That
// is the property the registry's slot mapping relies on: pairing
// equal-hash gates across two netlists is simulation-sound even when
// the pairing is ambiguous.

// splitmix64 finalizer: the standard strong 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hcombine folds v into h order-dependently.
func hcombine(h, v uint64) uint64 {
	return mix64(h ^ (v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
}

// Per-kind seeds, spread apart by the mixer.
const (
	seedPI    = 0x9ae16a3b2f90404f
	seedDFF   = 0xc3a5c85c97cb3127
	seedConst = 0xb492b66fbe98f273
	seedGate  = 0x9d6ef5a9f5c6c29b
	seedNet   = 0xa0761d6478bd642f
	seedMulti = 0xe7037ed1a0b428db
)

// gateHashes computes the canonical structural hash of every gate of c
// in one topological pass. The netlist must be acyclic (TopoOrder
// errors otherwise).
func gateHashes(c *netlist.Compact) ([]uint64, error) {
	topo, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	h := make([]uint64, c.NumGates())
	for i, id := range c.PIs {
		h[id] = hcombine(seedPI, uint64(i))
	}
	for i, id := range c.DFFs {
		h[id] = hcombine(seedDFF, uint64(i))
	}
	var scratch []uint64
	for _, id := range topo {
		typ := c.TypeOf(id)
		switch typ {
		case netlist.Input, netlist.DFF:
			continue // leaves, hashed above
		case netlist.Const0:
			h[id] = hcombine(seedConst, 0)
			continue
		case netlist.Const1:
			h[id] = hcombine(seedConst, 1)
			continue
		}
		fanin := c.FaninOf(id)
		g := hcombine(seedGate, uint64(typ))
		switch typ {
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
			// Commutative: sort the fanin hashes so operand order never
			// splits structurally equal gates.
			scratch = scratch[:0]
			for _, f := range fanin {
				scratch = append(scratch, h[f])
			}
			sort.Slice(scratch, func(a, b int) bool { return scratch[a] < scratch[b] })
			for _, fh := range scratch {
				g = hcombine(g, fh)
			}
		default: // Buf, Not: single input, order fixed
			for _, f := range fanin {
				g = hcombine(g, h[f])
			}
		}
		h[id] = g
	}
	return h, nil
}

// netlistHash folds the per-gate hashes into the netlist-level
// structural fingerprint used as the program registry key.
func netlistHash(c *netlist.Compact, gh []uint64) uint64 {
	h := hcombine(seedNet, uint64(c.NumGates()))
	h = hcombine(h, uint64(len(c.PIs)))
	h = hcombine(h, uint64(len(c.DFFs)))
	h = hcombine(h, uint64(len(c.POs)))
	for _, po := range c.POs {
		h = hcombine(h, gh[po])
	}
	for _, d := range c.DFFs {
		if fanin := c.FaninOf(d); len(fanin) > 0 {
			h = hcombine(h, gh[fanin[0]])
		} else {
			h = hcombine(h, 0)
		}
	}
	// Order-invariant multiset digest: wrapping sum of re-mixed gate
	// hashes, so gate ID permutations cannot change it.
	var multi uint64
	for _, x := range gh {
		multi += mix64(x ^ seedMulti)
	}
	return hcombine(h, multi)
}

// StructHash returns the canonical structural fingerprint of c: equal
// for any renaming or gate-ID permutation of the same logic (and for
// commutative operand reorderings), different — modulo 64-bit hash
// collision — for any other structural change.
func StructHash(c *netlist.Compact) (uint64, error) {
	gh, err := gateHashes(c)
	if err != nil {
		return 0, err
	}
	return netlistHash(c, gh), nil
}

// buildSlot maps each gate of a caller netlist (with per-gate hashes
// ch) onto a row of the shared program (with per-gate hashes ph), by
// pairing equal-hash gates in order of occurrence. Returns (nil, true)
// when the mapping is the identity — the common case of the same
// netlist or an ID-stable reparse — and (slot, true) for a genuine
// isomorph. Returns ok=false when the hash multisets do not match
// exactly, in which case the caller must compile privately.
func buildSlot(ph, ch []uint64) ([]int32, bool) {
	if len(ph) != len(ch) {
		return nil, false
	}
	identity := true
	for i := range ch {
		if ch[i] != ph[i] {
			identity = false
			break
		}
	}
	if identity {
		return nil, true
	}
	// Group program rows by hash, then consume each group in order.
	rows := make(map[uint64][]int32, len(ph))
	for i, x := range ph {
		rows[x] = append(rows[x], int32(i))
	}
	slot := make([]int32, len(ch))
	for g, x := range ch {
		q := rows[x]
		if len(q) == 0 {
			return nil, false
		}
		slot[g] = q[0]
		rows[x] = q[1:]
	}
	return slot, true
}
