package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cghti/internal/gen"
	"cghti/internal/netlist"
)

// permClone rebuilds n with fresh gate names, a permuted creation order
// for the internal gates, and shuffled fanin order on commutative
// gates — everything structural hashing must be invariant to. The
// interface order (PI and DFF declaration order, PO order, port order
// of non-commutative gates) is preserved, because it is part of the
// structure. Returns the clone and the old-ID -> new-ID mapping.
func permClone(n *netlist.Netlist, rng *rand.Rand) (*netlist.Netlist, []netlist.GateID) {
	out := netlist.New(n.Name + "_perm")
	idMap := make([]netlist.GateID, len(n.Gates))
	// Interface gates first, in declaration order.
	for _, id := range n.PIs {
		idMap[id] = out.MustAddGate("in_"+itoa(int(id)), netlist.Input)
	}
	for _, id := range n.DFFs {
		idMap[id] = out.MustAddGate("ff_"+itoa(int(id)), netlist.DFF)
	}
	// Internal gates in a random order (creation order is what assigns
	// gate IDs, so this permutes IDs too).
	var internal []netlist.GateID
	for g := range n.Gates {
		id := netlist.GateID(g)
		if t := n.Gates[g].Type; t != netlist.Input && t != netlist.DFF {
			internal = append(internal, id)
		}
	}
	rng.Shuffle(len(internal), func(i, j int) { internal[i], internal[j] = internal[j], internal[i] })
	for _, id := range internal {
		idMap[id] = out.MustAddGate("n_"+itoa(int(id)), n.Gates[id].Type)
	}
	// Wires: original port order, except commutative gates get their
	// fanin order shuffled.
	for g := range n.Gates {
		id := netlist.GateID(g)
		fanin := append([]netlist.GateID(nil), n.Gates[g].Fanin...)
		switch n.Gates[g].Type {
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor:
			rng.Shuffle(len(fanin), func(i, j int) { fanin[i], fanin[j] = fanin[j], fanin[i] })
		}
		for _, f := range fanin {
			out.Connect(idMap[f], idMap[id])
		}
	}
	for _, po := range n.POs {
		out.MarkPO(idMap[po])
	}
	return out, idMap
}

// TestStructHashInvariance is the satellite property test: a renamed,
// ID-permuted, operand-shuffled clone hashes equal to the original, its
// lease lands on the same shared program, and simulation produces
// byte-identical words under the gate correspondence.
func TestStructHashInvariance(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetlist(rng, 4+rng.Intn(5), 20+rng.Intn(80))
		if err := n.Validate(); err != nil {
			return true // degenerate draw, skip
		}
		clone, idMap := permClone(n, rng)
		if err := clone.Validate(); err != nil {
			t.Logf("clone invalid: %v", err)
			return false
		}
		h1, err1 := StructHash(netlist.CompactOf(n))
		h2, err2 := StructHash(netlist.CompactOf(clone))
		if err1 != nil || err2 != nil || h1 != h2 {
			t.Logf("hash mismatch: %x vs %x (%v %v)", h1, h2, err1, err2)
			return false
		}
		const words = 2
		p1, err := NewPacked(n, words)
		if err != nil {
			t.Logf("NewPacked: %v", err)
			return false
		}
		defer p1.Close()
		p2, err := NewPacked(clone, words)
		if err != nil {
			t.Logf("NewPacked clone: %v", err)
			return false
		}
		defer p2.Close()
		if p1.Program() != p2.Program() {
			t.Logf("isomorphic clones did not share a program")
			return false
		}
		// Same RNG stream fills the same positional interface, so every
		// corresponding gate must carry byte-identical words.
		p1.Randomize(rand.New(rand.NewSource(seed + 1)))
		p2.Randomize(rand.New(rand.NewSource(seed + 1)))
		p1.Run()
		p2.Run()
		for g := range n.Gates {
			for w := 0; w < words; w++ {
				if p1.Word(netlist.GateID(g), w) != p2.Word(idMap[g], w) {
					t.Logf("gate %d word %d differs across isomorphs", g, w)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStructHashSensitivity: changing one gate's function must change
// the fingerprint (a stale shared program would silently simulate the
// wrong logic otherwise).
func TestStructHashSensitivity(t *testing.T) {
	n := gen.MustBenchmark("c432")
	h1, err := StructHash(netlist.CompactOf(n))
	if err != nil {
		t.Fatal(err)
	}
	for g := range n.Gates {
		var swapped netlist.GateType
		switch n.Gates[g].Type {
		case netlist.And:
			swapped = netlist.Or
		case netlist.Or:
			swapped = netlist.And
		case netlist.Nand:
			swapped = netlist.Nor
		case netlist.Nor:
			swapped = netlist.Nand
		default:
			continue
		}
		orig := n.Gates[g].Type
		n.Gates[g].Type = swapped
		h2, err := StructHash(netlist.CompactOf(n))
		n.Gates[g].Type = orig
		if err != nil {
			t.Fatal(err)
		}
		if h2 == h1 {
			t.Fatalf("flipping gate %d (%v -> %v) left the fingerprint unchanged", g, orig, swapped)
		}
		break
	}
}

// FuzzStructHash fuzzes the canonicalizer against the catalog: for an
// arbitrary (circuit, seed) pick, a permuted clone must hash equal and
// a single-gate functional mutation must hash different.
func FuzzStructHash(f *testing.F) {
	circuits := []string{"c17", "s27", "c432", "c1355", "c880"}
	for i := range circuits {
		f.Add(uint8(i), int64(1))
		f.Add(uint8(i), int64(42))
	}
	f.Fuzz(func(t *testing.T, pick uint8, seed int64) {
		name := circuits[int(pick)%len(circuits)]
		n := gen.MustBenchmark(name)
		rng := rand.New(rand.NewSource(seed))
		clone, _ := permClone(n, rng)
		h1, err1 := StructHash(netlist.CompactOf(n))
		h2, err2 := StructHash(netlist.CompactOf(clone))
		if err1 != nil || err2 != nil {
			t.Fatalf("StructHash errored: %v / %v", err1, err2)
		}
		if h1 != h2 {
			t.Fatalf("%s: permuted clone hash %x != original %x", name, h2, h1)
		}
		// Mutate one commutative gate's function in the clone.
		for g := range clone.Gates {
			switch clone.Gates[g].Type {
			case netlist.And:
				clone.Gates[g].Type = netlist.Or
			case netlist.Nand:
				clone.Gates[g].Type = netlist.Nor
			default:
				continue
			}
			h3, err := StructHash(netlist.CompactOf(clone))
			if err != nil {
				t.Fatal(err)
			}
			if h3 == h1 {
				t.Fatalf("%s: mutated clone still hashes %x", name, h1)
			}
			return
		}
	})
}

// TestSharedProgramDedupe pins the registry: two engines over the same
// structure share one compiled program, reference counts track leases,
// and Close releases them.
func TestSharedProgramDedupe(t *testing.T) {
	DrainPackedPool()
	DrainProgramRegistry()
	n := mkC17(t)
	hits0 := sharedHits.Value()
	p1, err := NewPackedCompact(netlist.CompactOf(n), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPackedCompact(netlist.CompactOf(n), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Program() != p2.Program() {
		t.Fatal("same structure compiled twice")
	}
	if got := sharedHits.Value() - hits0; got < 1 {
		t.Fatalf("shared_program_hits advanced by %d, want >= 1", got)
	}
	if progs, refs := SharedProgramStats(); progs != 1 || refs != 2 {
		t.Fatalf("registry has %d programs / %d refs, want 1/2", progs, refs)
	}
	p1.Close()
	p1.Close() // idempotent
	p2.Close()
	if _, refs := SharedProgramStats(); refs != 0 {
		t.Fatalf("refs = %d after Close, want 0", refs)
	}
}

// TestSharedProgramEviction: the registry stays bounded and prefers
// evicting unreferenced programs; leases held across an eviction keep
// working.
func TestSharedProgramEviction(t *testing.T) {
	DrainPackedPool()
	DrainProgramRegistry()
	ev0 := sharedEvictions.Value()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < maxSharedPrograms+8; i++ {
		n := randomNetlist(rng, 4, 12+i) // distinct sizes -> distinct structures
		p, err := NewPackedCompact(netlist.CompactOf(n), 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		p.Run() // an evicted program must still execute
		p.Close()
	}
	progs, _ := SharedProgramStats()
	if progs > maxSharedPrograms {
		t.Fatalf("registry holds %d programs, cap is %d", progs, maxSharedPrograms)
	}
	if sharedEvictions.Value() == ev0 {
		t.Fatal("no evictions counted past the registry cap")
	}
	DrainProgramRegistry()
}

// TestLevelBands: the compiled band table partitions the op list with
// strictly increasing level per band, and the level-parallel runner is
// bit-identical to the serial run on a netlist big enough to engage it.
func TestLevelBands(t *testing.T) {
	n := gen.MustBenchmark("c880")
	c := netlist.CompactOf(n)
	p, err := NewPackedCompact(c, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	prog := p.Program()
	if prog.levelEnd == nil {
		t.Fatal("no level bands on an acyclic catalog circuit")
	}
	if last := prog.levelEnd[len(prog.levelEnd)-1]; int(last) != len(prog.ops) {
		t.Fatalf("bands end at %d, program has %d ops", last, len(prog.ops))
	}
	start := int32(0)
	prevLevel := int32(-1)
	for _, end := range prog.levelEnd {
		if end <= start {
			t.Fatalf("empty band [%d,%d)", start, end)
		}
		l := c.Level[prog.ops[start].out]
		if l <= prevLevel {
			t.Fatalf("band level %d not increasing past %d", l, prevLevel)
		}
		for i := start; i < end; i++ {
			if c.Level[prog.ops[i].out] != l {
				t.Fatalf("op %d level %d inside level-%d band", i, c.Level[prog.ops[i].out], l)
			}
		}
		prevLevel = l
		start = end
	}
}

func TestLevelParallelBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 40k-gate SoC")
	}
	n := gen.MustBenchmark("soc:40000")
	// One word: too narrow for word-sharding, so a multi-worker budget
	// must take the level-parallel path.
	serial, err := NewPacked(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	par, err := NewPackedWorkers(n, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	if len(par.Program().ops) < levelParMinOps {
		t.Skipf("program too small (%d ops) to engage level parallelism", len(par.Program().ops))
	}
	runs0 := defaultMeters.levelRuns.Value()
	serial.Randomize(rand.New(rand.NewSource(9)))
	par.Randomize(rand.New(rand.NewSource(9)))
	serial.Run()
	par.Run()
	if defaultMeters.levelRuns.Value() == runs0 {
		t.Fatal("level-parallel path did not engage")
	}
	for g := range n.Gates {
		if serial.Word(netlist.GateID(g), 0) != par.Word(netlist.GateID(g), 0) {
			t.Fatalf("gate %d differs between serial and level-parallel run", g)
		}
	}
}
