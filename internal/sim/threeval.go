package sim

import (
	"fmt"

	"cghti/internal/netlist"
)

// V3 is a three-valued logic value.
type V3 uint8

const (
	// V3Zero is logic 0.
	V3Zero V3 = 0
	// V3One is logic 1.
	V3One V3 = 1
	// V3X is unknown / don't care.
	V3X V3 = 2
)

// String renders the value as "0", "1" or "X".
func (v V3) String() string {
	switch v {
	case V3Zero:
		return "0"
	case V3One:
		return "1"
	default:
		return "X"
	}
}

// Not3 returns the three-valued complement.
func Not3(v V3) V3 {
	switch v {
	case V3Zero:
		return V3One
	case V3One:
		return V3Zero
	}
	return V3X
}

// EvalGate3 computes the three-valued output of a gate type. X inputs
// propagate pessimistically (an X on a non-controlling path makes the
// output X), exactly the semantics PODEM's implication step needs.
func EvalGate3(t netlist.GateType, in []V3) V3 {
	switch t {
	case netlist.Const0:
		return V3Zero
	case netlist.Const1:
		return V3One
	case netlist.Buf, netlist.DFF:
		return in[0]
	case netlist.Not:
		return Not3(in[0])
	case netlist.And, netlist.Nand:
		acc := V3One
		for _, v := range in {
			if v == V3Zero {
				acc = V3Zero
				break
			}
			if v == V3X {
				acc = V3X
			}
		}
		if t == netlist.Nand {
			return Not3(acc)
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := V3Zero
		for _, v := range in {
			if v == V3One {
				acc = V3One
				break
			}
			if v == V3X {
				acc = V3X
			}
		}
		if t == netlist.Nor {
			return Not3(acc)
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := V3Zero
		for _, v := range in {
			if v == V3X {
				return V3X
			}
			acc ^= v & 1
		}
		if t == netlist.Xnor {
			return Not3(acc)
		}
		return acc
	}
	panic(fmt.Sprintf("sim: EvalGate3 on %v", t))
}

// Eval3 runs a three-valued simulation from a partial input assignment:
// inputs not present in the map are X. The returned slice holds every
// gate's three-valued value.
//
// This is the proof engine behind the compatibility graph's
// "validation-free" property: simulating a merged trigger cube with Eval3
// and observing a rare node at its definite rare value proves that every
// completion of the cube excites the node.
func Eval3(n *netlist.Netlist, inputs map[netlist.GateID]V3) ([]V3, error) {
	topo, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	vals := make([]V3, len(n.Gates))
	for i := range vals {
		vals[i] = V3X
	}
	var buf []V3
	for _, id := range topo {
		g := &n.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			if v, ok := inputs[id]; ok {
				vals[id] = v
			}
		default:
			if cap(buf) < len(g.Fanin) {
				buf = make([]V3, len(g.Fanin))
			}
			in := buf[:len(g.Fanin)]
			for i, f := range g.Fanin {
				in[i] = vals[f]
			}
			vals[id] = EvalGate3(g.Type, in)
		}
	}
	return vals, nil
}
