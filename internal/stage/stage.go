// Package stage holds the canonical stage names shared by the
// framework pipeline, the observability layer, and the chaos
// fault-injection hooks. The framework root re-exports the pipeline
// names as cghti.Stage*; internal packages import this package so a
// worker can attribute a panic or a cancellation to the stage it
// happened in without importing the framework root.
package stage

// Pipeline stages of Generate, in execution order.
const (
	Generate    = "generate" // root span wrapping the whole pipeline
	Levelize    = "levelize"
	RareExtract = "rare_extract"
	CubeGen     = "cube_gen"
	GraphEdges  = "graph_edges"
	CliqueMine  = "clique_mine"
	Insert      = "insert"
)

// Detection / fault-simulation stages (outside the Generate pipeline,
// but cancellable and chaos-instrumented the same way).
const (
	MERO     = "mero"
	NDATPG   = "ndatpg"
	Evaluate = "evaluate"
	FaultSim = "faultsim"
)
