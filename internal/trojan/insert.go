package trojan

import (
	"context"
	"fmt"
	"math/rand"

	"cghti/internal/atpg"
	"cghti/internal/chaos"
	"cghti/internal/netlist"
	"cghti/internal/obs"
	"cghti/internal/rare"
	"cghti/internal/scoap"
	"cghti/internal/sim"
	"cghti/internal/stage"
)

// instancesCounter resolves the insertion counter against the registry
// carried by ctx, so per-run scoped registries attribute each splice to
// their own run (the process default otherwise).
func instancesCounter(ctx context.Context) *obs.Counter {
	r := obs.FromContext(ctx)
	if r == obs.Default() {
		return cntInstancesDefault
	}
	return r.Counter("trojan.instances_inserted")
}

var cntInstancesDefault = obs.NewCounter("trojan.instances_inserted")

// PayloadKind selects the trojan's effect once triggered.
type PayloadKind int

const (
	// PayloadFlip XORs the trigger output into a victim net, inverting
	// it while the trojan is active (the classic TRIT-style functional
	// payload; makes the effect observable downstream of the victim).
	PayloadFlip PayloadKind = iota
	// PayloadLeakToOutput adds a new primary output driven by
	// XOR(victim, trigger): a covert-channel style payload that leaks an
	// internal net when the trojan is idle and corrupts the leak when
	// active. It does not modify functional paths.
	PayloadLeakToOutput
	// PayloadForce pins the victim net to a constant while the trojan is
	// active (OR with the trigger for active-high: a denial-of-service
	// payload that jams downstream logic at 1).
	PayloadForce
)

// String names the payload kind.
func (p PayloadKind) String() string {
	switch p {
	case PayloadFlip:
		return "flip"
	case PayloadLeakToOutput:
		return "leak"
	case PayloadForce:
		return "force"
	}
	return fmt.Sprintf("PayloadKind(%d)", int(p))
}

// InsertSpec parameterizes instance insertion.
type InsertSpec struct {
	// Trigger construction parameters.
	Trigger TriggerSpec
	// Payload selects the effect (default PayloadFlip).
	Payload PayloadKind
	// Victim optionally pins the payload net by name; empty = choose a
	// random loop-safe victim.
	Victim string
	// Prefix names the added gates (default "ht"); instance i gets
	// "<prefix><i>_" names.
	Prefix string
	// Seed drives victim selection and trigger-type randomness.
	Seed int64
}

func (s InsertSpec) withDefaults() InsertSpec {
	if s.Prefix == "" {
		s.Prefix = "ht"
	}
	return s
}

// Instance describes one inserted trojan.
type Instance struct {
	// Index is the instance number used in gate names.
	Index int
	// Trigger is the generated trigger logic.
	Trigger *Trigger
	// TriggerOut is the name of the net that fires the payload.
	TriggerOut string
	// PayloadGate is the name of the payload XOR/XNOR gate.
	PayloadGate string
	// Victim is the name of the net the payload taps.
	Victim string
	// Payload records the payload kind.
	Payload PayloadKind
	// Cube is the merged activation cube (from the clique); filling its
	// X bits arbitrarily yields a vector that fires the trigger.
	Cube atpg.Cube
	// AddedGates lists every gate name added to the netlist.
	AddedGates []string
}

// InsertInstance builds trigger logic over the clique nodes and splices
// it into a clone of n. nodes must be a compatible set (a clique) and
// cube its merged activation cube (recorded on the instance for
// downstream consumers; pass the zero Cube if unknown). index
// distinguishes multiple instances inserted into the same base netlist
// (it prefixes gate names).
func InsertInstance(n *netlist.Netlist, nodes []rare.Node, cube atpg.Cube, index int, spec InsertSpec) (*netlist.Netlist, *Instance, error) {
	return InsertInstanceContext(context.Background(), n, nodes, cube, index, spec)
}

// InsertInstanceContext is InsertInstance with cooperative cancellation,
// checked between victim-candidate trials (each trial clones and
// re-levelizes the netlist — the expensive part of insertion). On
// cancellation it returns ctx's error; there is no partial result, an
// instance either splices completely or not at all.
func InsertInstanceContext(ctx context.Context, n *netlist.Netlist, nodes []rare.Node, cube atpg.Cube, index int, spec InsertSpec) (*netlist.Netlist, *Instance, error) {
	spec = spec.withDefaults()
	if len(nodes) == 0 {
		return nil, nil, fmt.Errorf("trojan: empty trigger-node set")
	}
	instancesCounter(ctx).Inc()
	tspec := spec.Trigger
	tspec.Seed = spec.Seed ^ int64(uint64(index)*0x9e3779b97f4a7c15)
	trig, err := BuildTrigger(nodes, tspec)
	if err != nil {
		return nil, nil, err
	}
	if err := trig.Verify(); err != nil {
		return nil, nil, err
	}

	out := n.Clone()
	out.Name = fmt.Sprintf("%s_%s%d", n.Name, spec.Prefix, index)
	inst := &Instance{
		Index:   index,
		Trigger: trig,
		Payload: spec.Payload,
		Cube:    cube,
	}
	prefix := fmt.Sprintf("%s%d_", spec.Prefix, index)

	// Materialize trigger gates bottom-up (children have smaller proto
	// indices, so a forward scan over t.Gates sees children first).
	gateIDs := make([]netlist.GateID, len(trig.Gates))
	for i := range trig.Gates {
		tg := &trig.Gates[i]
		name := fmt.Sprintf("%strig%d", prefix, i)
		id, err := out.AddGate(name, tg.Type)
		if err != nil {
			return nil, nil, err
		}
		inst.AddedGates = append(inst.AddedGates, name)
		for _, leaf := range tg.LeafInputs {
			out.Connect(leaf.ID, id)
		}
		for _, k := range tg.ChildGates {
			out.Connect(gateIDs[k], id)
		}
		gateIDs[i] = id
	}
	trigOut := gateIDs[trig.Root]
	inst.TriggerOut = out.Gates[trigOut].Name

	// Choose a victim net: loop-safe (no trigger node in its transitive
	// fanout), observable, and — when the activation cube is known —
	// spot-checked so the payload's effect actually reaches an output
	// under the activation condition. Without that last check a trigger
	// condition deep in the victim's own cone can mask the flip on every
	// activating vector, producing a functional no-op "trojan" (TC > 0
	// but DC ≡ 0).
	rng := rand.New(rand.NewSource(spec.Seed ^ (int64(index)+1)*0x517cc1b727220a95))
	candidates, err := victimCandidates(n, nodes, spec, rng, 8)
	if err != nil {
		return nil, nil, err
	}
	var (
		best     *netlist.Netlist
		bestInst Instance
	)
	ctxDone := ctx.Done()
	for _, victim := range candidates {
		select {
		case <-ctxDone:
			return nil, nil, ctx.Err()
		default:
		}
		if err := chaos.Hit(stage.Insert, 0); err != nil {
			return nil, nil, err
		}
		trial := out.Clone()
		trialInst := *inst
		if err := wirePayload(trial, &trialInst, trig, victim, trigOut, prefix, spec); err != nil {
			return nil, nil, err
		}
		if err := trial.Levelize(); err != nil {
			return nil, nil, fmt.Errorf("trojan: insertion created a cycle: %w", err)
		}
		if best == nil {
			// Fallback if every candidate fails the spot-check below.
			best, bestInst = trial, trialInst
		}
		if spec.Payload == PayloadLeakToOutput || cube.Len() == 0 || cube.CareCount() == 0 ||
			payloadObservable(n, trial, &trialInst, cube, rng) {
			best, bestInst = trial, trialInst
			break
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("trojan: no loop-safe victim net exists")
	}
	*inst = bestInst
	return best, inst, nil
}

// wirePayload splices the payload gate for the chosen victim into out.
func wirePayload(out *netlist.Netlist, inst *Instance, trig *Trigger, victim, trigOut netlist.GateID, prefix string, spec InsertSpec) error {
	inst.Victim = out.Gates[victim].Name
	payloadName := prefix + "payload"
	// Pick the payload cell so the idle trigger value passes the victim
	// through unchanged: XOR/XNOR invert on activation (flip/leak),
	// OR/AND jam to a constant on activation (force).
	activeHigh := trig.Spec.ActivationValue() == 1
	var ptype netlist.GateType
	switch spec.Payload {
	case PayloadForce:
		if activeHigh {
			ptype = netlist.Or
		} else {
			ptype = netlist.And
		}
	default:
		if activeHigh {
			ptype = netlist.Xor
		} else {
			ptype = netlist.Xnor
		}
	}
	payload, err := out.AddGate(payloadName, ptype)
	if err != nil {
		return err
	}
	inst.PayloadGate = payloadName
	inst.AddedGates = append(inst.AddedGates, payloadName)

	switch spec.Payload {
	case PayloadFlip, PayloadForce:
		// Steal the victim's fanouts, then feed the payload from the
		// victim and the trigger.
		fanouts := append([]netlist.GateID(nil), out.Gates[victim].Fanout...)
		for _, f := range fanouts {
			if err := out.ReplaceFanin(f, victim, payload); err != nil {
				return err
			}
		}
		out.Connect(victim, payload)
		out.Connect(trigOut, payload)
		if out.Gates[victim].IsPO {
			if err := out.ReplacePOMarker(victim, payload); err != nil {
				return err
			}
		}
	case PayloadLeakToOutput:
		out.Connect(victim, payload)
		out.Connect(trigOut, payload)
		out.MarkPO(payload)
	default:
		return fmt.Errorf("trojan: unknown payload kind %v", spec.Payload)
	}
	return nil
}

// payloadObservable simulates a handful of activating vectors (random
// completions of the cube) and reports whether any produces an output
// difference against the golden netlist.
func payloadObservable(golden, infected *netlist.Netlist, inst *Instance, cube atpg.Cube, rng *rand.Rand) bool {
	inputs := golden.CombInputs()
	goldenOuts := golden.CombOutputs()
	infectedOuts := infected.CombOutputs()
	in := make(map[netlist.GateID]uint8, len(inputs))
	for trial := 0; trial < 16; trial++ {
		filled := cube.Fill(rng)
		for i, id := range inputs {
			if filled[i] {
				in[id] = 1
			} else {
				in[id] = 0
			}
		}
		gv, err := sim.Eval(golden, in)
		if err != nil {
			return false
		}
		iv, err := sim.Eval(infected, in)
		if err != nil {
			return false
		}
		for i := range goldenOuts {
			if gv[goldenOuts[i]] != iv[infectedOuts[i]] {
				return true
			}
		}
	}
	return false
}

// victimCandidates returns up to max victim nets to try, each loop-safe
// (no trigger node in its transitive fanout) and observable (finite
// SCOAP CO). A pinned spec.Victim is validated and returned alone.
func victimCandidates(orig *netlist.Netlist, nodes []rare.Node, spec InsertSpec, rng *rand.Rand, max int) ([]netlist.GateID, error) {
	trigSet := make(map[netlist.GateID]bool, len(nodes))
	for _, nd := range nodes {
		trigSet[nd.ID] = true
	}
	measures, err := scoap.Compute(orig)
	if err != nil {
		return nil, err
	}
	loopSafe := func(v netlist.GateID) bool {
		if spec.Payload == PayloadLeakToOutput {
			return true // new PO only; no functional rewiring
		}
		tfo := orig.TransitiveFanout(v)
		for id := range trigSet {
			if tfo[id] {
				return false
			}
		}
		return true
	}
	usable := func(v netlist.GateID) bool {
		g := &orig.Gates[v]
		if g.Type == netlist.DFF || g.Type.IsSource() {
			return false
		}
		if trigSet[v] {
			return false
		}
		if len(g.Fanout) == 0 && !g.IsPO {
			return false
		}
		if measures.CO[v] >= scoap.Inf {
			return false // structurally unobservable: payload would be a no-op
		}
		return true
	}

	if spec.Victim != "" {
		v, ok := orig.Lookup(spec.Victim)
		if !ok {
			return nil, fmt.Errorf("trojan: victim net %q not found", spec.Victim)
		}
		if !usable(v) || !loopSafe(v) {
			return nil, fmt.Errorf("trojan: victim net %q unusable (source, trigger node, or loop)", spec.Victim)
		}
		return []netlist.GateID{v}, nil
	}
	// Random search, then a deterministic sweep to fill the list.
	numOrig := orig.NumGates()
	var out []netlist.GateID
	taken := map[netlist.GateID]bool{}
	add := func(v netlist.GateID) {
		if !taken[v] && usable(v) && loopSafe(v) {
			taken[v] = true
			out = append(out, v)
		}
	}
	for tries := 0; tries < 16*max && len(out) < max; tries++ {
		add(netlist.GateID(rng.Intn(numOrig)))
	}
	for i := 0; i < numOrig && len(out) < max; i++ {
		add(netlist.GateID(i))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trojan: no loop-safe victim net exists")
	}
	return out, nil
}
