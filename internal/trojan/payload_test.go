package trojan

import (
	"math/rand"
	"testing"

	"cghti/internal/atpg"
	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/sim"
)

func TestInsertPayloadForce(t *testing.T) {
	n, g, clique := pipeline(t, 51)
	infected, inst, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0,
		InsertSpec{Seed: 15, Payload: PayloadForce})
	if err != nil {
		t.Fatal(err)
	}
	if err := infected.Validate(); err != nil {
		t.Fatal(err)
	}
	payload := infected.MustLookup(inst.PayloadGate)
	if got := infected.Gates[payload].Type; got != netlist.Or {
		t.Fatalf("active-high force payload is %v, want OR", got)
	}

	// Dormant: payload output equals victim on non-firing vectors.
	trig := infected.MustLookup(inst.TriggerOut)
	victim := infected.MustLookup(inst.Victim)
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for v := 0; v < 200; v++ {
		in := map[netlist.GateID]uint8{}
		for _, id := range n.CombInputs() {
			in[id] = uint8(rng.Intn(2))
		}
		iv, err := sim.Eval(infected, in)
		if err != nil {
			t.Fatal(err)
		}
		if iv[trig] == 1 {
			continue
		}
		checked++
		if iv[payload] != iv[victim] {
			t.Fatal("dormant force payload altered the victim")
		}
	}
	if checked == 0 {
		t.Fatal("trigger fired on every vector")
	}

	// Active: payload jams at 1 regardless of the victim.
	filled := clique.Cube.Fill(rng)
	in := map[netlist.GateID]uint8{}
	for i, id := range g.InputIDs {
		if filled[i] {
			in[id] = 1
		} else {
			in[id] = 0
		}
	}
	iv, err := sim.Eval(infected, in)
	if err != nil {
		t.Fatal(err)
	}
	if iv[trig] != 1 {
		t.Fatal("cube did not fire")
	}
	if iv[payload] != 1 {
		t.Fatal("active force payload did not jam to 1")
	}
}

func TestInsertPayloadForceActiveLow(t *testing.T) {
	n, g, clique := pipeline(t, 52)
	infected, inst, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0,
		InsertSpec{Seed: 16, Payload: PayloadForce,
			Trigger: TriggerSpec{ActiveLow: true}})
	if err != nil {
		t.Fatal(err)
	}
	payload := infected.MustLookup(inst.PayloadGate)
	if got := infected.Gates[payload].Type; got != netlist.And {
		t.Fatalf("active-low force payload is %v, want AND", got)
	}
	// Active (trigger=0): jams at 0.
	rng := rand.New(rand.NewSource(3))
	filled := clique.Cube.Fill(rng)
	in := map[netlist.GateID]uint8{}
	for i, id := range g.InputIDs {
		if filled[i] {
			in[id] = 1
		} else {
			in[id] = 0
		}
	}
	iv, err := sim.Eval(infected, in)
	if err != nil {
		t.Fatal(err)
	}
	if iv[infected.MustLookup(inst.TriggerOut)] != 0 {
		t.Fatal("active-low cube did not fire (trigger should be 0)")
	}
	if iv[payload] != 0 {
		t.Fatal("active-low force payload did not jam to 0")
	}
}

// TestInsertExhaustiveEquivalenceSmall: on a circuit small enough to
// enumerate, the infected netlist equals the golden one on EVERY vector
// where the trigger is idle, and flips the victim's observable value on
// EVERY vector where it fires.
func TestInsertExhaustiveEquivalenceSmall(t *testing.T) {
	// Hand-built circuit with a known rare condition: y = AND(a,b,c,d)
	// fires with probability 1/16; z = XOR(e,a) is an independent
	// observable victim.
	n := netlist.New("tiny")
	var pis []netlist.GateID
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		pis = append(pis, n.MustAddGate(name, netlist.Input))
	}
	y := n.MustAddGate("y", netlist.And)
	for _, p := range pis[:4] {
		n.Connect(p, y)
	}
	z := n.MustAddGate("z", netlist.Xor)
	n.Connect(pis[4], z)
	n.Connect(pis[0], z)
	n.MarkPO(y)
	n.MarkPO(z)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}

	// Single trigger node y (rare value 1), victim pinned to z.
	nodes := []rare.Node{{ID: y, RareValue: 1, Prob: 1.0 / 16}}
	cube := atpg.NewCube(len(n.CombInputs()))
	for i := 0; i < 4; i++ {
		cube.Set(i, sim.V3One)
	}
	infected, inst, err := InsertInstance(n, nodes, cube, 0,
		InsertSpec{Seed: 17, Victim: "z"})
	if err != nil {
		t.Fatal(err)
	}
	trig := infected.MustLookup(inst.TriggerOut)

	for p := 0; p < 32; p++ {
		in := map[netlist.GateID]uint8{}
		for j, id := range pis {
			in[id] = uint8(p >> uint(j) & 1)
		}
		gv, err := sim.Eval(n, in)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := sim.Eval(infected, in)
		if err != nil {
			t.Fatal(err)
		}
		fires := in[pis[0]] == 1 && in[pis[1]] == 1 && in[pis[2]] == 1 && in[pis[3]] == 1
		if got := iv[trig] == 1; got != fires {
			t.Fatalf("vector %05b: trigger=%v, want %v", p, got, fires)
		}
		// PO y untouched always; PO z (now the payload) flips iff fired.
		if iv[infected.POs[0]] != gv[y] {
			t.Fatalf("vector %05b: non-victim PO changed", p)
		}
		wantZ := gv[z]
		if fires {
			wantZ ^= 1
		}
		if iv[infected.POs[1]] != wantZ {
			t.Fatalf("vector %05b: victim PO = %d, want %d (fires=%v)",
				p, iv[infected.POs[1]], wantZ, fires)
		}
	}
}
