package trojan

import (
	"context"
	"fmt"

	"cghti/internal/compat"
	"cghti/internal/netlist"
	pipe "cghti/internal/pipeline"
	"cghti/internal/stage"
)

// Inserted is one emitted HT-infected netlist, as produced by the
// insertion pipeline stage (the framework layer re-wraps it into its
// public Benchmark type).
type Inserted struct {
	Netlist  *netlist.Netlist
	Instance *Instance
	Clique   compat.Clique
}

// InsertStage adapts per-instance trojan insertion (Algorithm 3) to the
// pipeline stage graph. Inputs: the levelized base netlist, the
// compatibility graph, the stealth-sorted clique list. Output:
// []Inserted, one per emitted instance. Not cacheable: insertion is the
// cheap per-instance tail the upstream caching exists to serve.
type InsertStage struct {
	Spec      InsertSpec
	Instances int

	total int // effective instance target, recorded by Run for Salvage
}

// NewInsertStage returns the insertion stage adapter.
func NewInsertStage(spec InsertSpec, instances int) *InsertStage {
	return &InsertStage{Spec: spec, Instances: instances}
}

// Name implements pipeline.Stage.
func (s *InsertStage) Name() string { return stage.Insert }

// Run implements pipeline.Stage. Each completed instance is
// independently valid, so the slice built so far is returned alongside
// any per-instance error for the executor's salvage judgment.
func (s *InsertStage) Run(ctx context.Context, env *pipe.Env, inputs []pipe.Artifact) (pipe.Artifact, error) {
	n := inputs[0].(*netlist.Netlist)
	g := inputs[1].(*compat.Graph)
	cliques := inputs[2].([]compat.Clique)

	total := s.Instances
	if total > len(cliques) {
		total = len(cliques)
	}
	s.total = total
	progress := env.Progress(stage.Insert)

	var out []Inserted
	for i := 0; i < total; i++ {
		c := cliques[i]
		infected, inst, err := InsertInstanceContext(ctx, n, c.Nodes(g), c.Cube, i, s.Spec)
		if err != nil {
			return out, fmt.Errorf("cghti: instance %d: %w", i, err)
		}
		out = append(out, Inserted{Netlist: infected, Instance: inst, Clique: c})
		if progress != nil {
			progress(i+1, total)
		}
	}
	return out, nil
}

// Salvage implements pipeline.Degradable: an interruption after the
// first instance degrades to fewer benchmarks.
func (s *InsertStage) Salvage(out pipe.Artifact) (done, total int, detail string, ok bool) {
	inserted, _ := out.([]Inserted)
	if len(inserted) == 0 {
		return 0, 0, "", false
	}
	return len(inserted), s.total,
		fmt.Sprintf("%d of %d instances inserted", len(inserted), s.total), true
}
