package trojan

import (
	"fmt"

	"cghti/internal/netlist"
)

// InsertTimeBomb splices a sequential "time-bomb" payload behind an
// already-generated trigger: a CounterBits-wide ripple counter that
// increments on every clock cycle in which the trigger condition holds,
// and fires the flip payload only when the counter saturates. This is
// the classic sequential Trust-Hub trojan shape (e.g. s15850-T100
// style): even an adversary who stumbles on the activation condition
// must hold it for 2^CounterBits - 1 cycles before any effect is
// observable, which defeats single-vector logic testing entirely.
//
// The counter state is ordinary DFFs, so the infected netlist remains a
// valid sequential .bench circuit; in the full-scan view the counter
// bits become pseudo-PIs, which models a scan-accessible design (the
// hardest case for the attacker, the easiest for detection — the paper's
// combinational analysis carries over unchanged).
type TimeBombSpec struct {
	// CounterBits is the counter width (default 4 → 15 armed cycles).
	CounterBits int
	// Prefix names the added gates (default "tb").
	Prefix string
}

func (s TimeBombSpec) withDefaults() TimeBombSpec {
	if s.CounterBits <= 0 {
		s.CounterBits = 4
	}
	if s.CounterBits > 20 {
		s.CounterBits = 20
	}
	if s.Prefix == "" {
		s.Prefix = "tb"
	}
	return s
}

// TimeBomb describes the inserted sequential payload.
type TimeBomb struct {
	// CounterBits is the width used.
	CounterBits int
	// StateGates names the counter DFFs, LSB first.
	StateGates []string
	// Armed names the saturation-detect net (AND of all counter bits).
	Armed string
	// PayloadGate names the final XOR splice.
	PayloadGate string
	// Victim names the flipped net.
	Victim string
}

// InsertTimeBomb rewires an instance produced with PayloadFlip into a
// time-bomb: the instance's combinational payload XOR is re-driven by
// the counter's saturation signal instead of the raw trigger. The
// original trigger net becomes the counter's enable.
func InsertTimeBomb(n *netlist.Netlist, inst *Instance, spec TimeBombSpec) (*TimeBomb, error) {
	spec = spec.withDefaults()
	if inst.Payload != PayloadFlip {
		return nil, fmt.Errorf("trojan: time bomb needs a flip-payload instance, got %v", inst.Payload)
	}
	trig, ok := n.Lookup(inst.TriggerOut)
	if !ok {
		return nil, fmt.Errorf("trojan: trigger net %q not in netlist", inst.TriggerOut)
	}
	payload, ok := n.Lookup(inst.PayloadGate)
	if !ok {
		return nil, fmt.Errorf("trojan: payload net %q not in netlist", inst.PayloadGate)
	}

	tb := &TimeBomb{CounterBits: spec.CounterBits, Victim: inst.Victim, PayloadGate: inst.PayloadGate}
	prefix := fmt.Sprintf("%s%d_", spec.Prefix, inst.Index)
	newGate := func(name string, t netlist.GateType, fanin ...netlist.GateID) (netlist.GateID, error) {
		id, err := n.AddGate(prefix+name, t)
		if err != nil {
			return netlist.InvalidGate, err
		}
		for _, f := range fanin {
			n.Connect(f, id)
		}
		return id, nil
	}

	// Counter: bit i toggles when trigger & all lower bits are 1
	// (synchronous increment gated by the trigger).
	bits := make([]netlist.GateID, spec.CounterBits)
	for i := range bits {
		id, err := n.AddGate(fmt.Sprintf("%scnt%d", prefix, i), netlist.DFF)
		if err != nil {
			return nil, err
		}
		bits[i] = id
		tb.StateGates = append(tb.StateGates, n.Gates[id].Name)
	}
	carry := trig // increment enable
	for i, bit := range bits {
		// next_bit = bit XOR carry_in; carry_out = bit AND carry_in.
		next, err := newGate(fmt.Sprintf("nx%d", i), netlist.Xor, bit, carry)
		if err != nil {
			return nil, err
		}
		n.Connect(next, bit) // DFF data input
		if i+1 < len(bits) {
			c, err := newGate(fmt.Sprintf("cy%d", i), netlist.And, bit, carry)
			if err != nil {
				return nil, err
			}
			carry = c
		}
	}

	// Armed = AND of all counter bits (saturation).
	armed, err := newGate("armed", netlist.And, bits...)
	if err != nil {
		return nil, err
	}
	tb.Armed = n.Gates[armed].Name

	// Re-drive the payload XOR from the armed signal instead of the raw
	// trigger.
	if err := n.ReplaceFanin(payload, trig, armed); err != nil {
		return nil, err
	}
	if err := n.Levelize(); err != nil {
		return nil, fmt.Errorf("trojan: time bomb created a cycle: %w", err)
	}
	return tb, nil
}
