package trojan

import (
	"testing"

	"cghti/internal/netlist"
	"cghti/internal/sim"
)

// timeBombFixture inserts a flip trojan then converts it to a time bomb.
func timeBombFixture(t *testing.T, bitsN int) (*netlist.Netlist, *Instance, *TimeBomb, *netlist.Netlist) {
	t.Helper()
	base, g, clique := pipeline(t, 29)
	infected, inst, err := InsertInstance(base, clique.Nodes(g), clique.Cube, 0, InsertSpec{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := InsertTimeBomb(infected, inst, TimeBombSpec{CounterBits: bitsN})
	if err != nil {
		t.Fatal(err)
	}
	if err := infected.Validate(); err != nil {
		t.Fatal(err)
	}
	return infected, inst, tb, base
}

func TestTimeBombStructure(t *testing.T) {
	infected, inst, tb, _ := timeBombFixture(t, 3)
	if len(tb.StateGates) != 3 {
		t.Fatalf("counter has %d bits, want 3", len(tb.StateGates))
	}
	// Payload must now be fed by the armed net, not the trigger.
	payload := infected.MustLookup(inst.PayloadGate)
	armed := infected.MustLookup(tb.Armed)
	trig := infected.MustLookup(inst.TriggerOut)
	hasArmed, hasTrig := false, false
	for _, f := range infected.Gates[payload].Fanin {
		if f == armed {
			hasArmed = true
		}
		if f == trig {
			hasTrig = true
		}
	}
	if !hasArmed || hasTrig {
		t.Fatal("payload not rewired from trigger to armed")
	}
}

// TestTimeBombCountsAndFires runs the sequential simulation: hold the
// trigger condition active and check that the payload fires only after
// 2^bits - 1 cycles.
func TestTimeBombCountsAndFires(t *testing.T) {
	const bits = 3
	infected, inst, tb, _ := timeBombFixture(t, bits)

	p, err := sim.NewPacked(infected, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the activation cube's care bits on the primary inputs every
	// cycle; counter DFFs start at 0.
	cube := inst.Cube
	for i, id := range infected.CombInputs() {
		// Counter DFFs are appended after the original inputs; the cube
		// is over the original input list only.
		if i < cube.Len() {
			switch cube.Get(i) {
			case sim.V3One:
				p.SetWord(id, 0, ^uint64(0))
			default:
				p.SetWord(id, 0, 0)
			}
		} else {
			p.SetWord(id, 0, 0)
		}
	}
	armed := infected.MustLookup(tb.Armed)
	trig := infected.MustLookup(inst.TriggerOut)
	firedAt := -1
	for cycle := 0; cycle < 2<<bits; cycle++ {
		p.Run()
		if p.Word(trig, 0) == 0 {
			t.Fatalf("cycle %d: trigger condition dropped", cycle)
		}
		if p.Word(armed, 0) != 0 && firedAt < 0 {
			firedAt = cycle
		}
		p.Step()
	}
	want := (1 << bits) - 1 // counter reaches all-ones after 7 increments
	if firedAt != want {
		t.Fatalf("armed at cycle %d, want %d", firedAt, want)
	}
}

// TestTimeBombSilentWithoutTrigger: with random non-activating inputs
// the counter never saturates and outputs match the golden circuit.
func TestTimeBombSilentWithoutTrigger(t *testing.T) {
	infected, inst, tb, base := timeBombFixture(t, 4)
	p, err := sim.NewPacked(infected, 1)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := sim.NewPacked(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero inputs (extremely unlikely to fire a stealth trigger).
	for _, id := range infected.CombInputs() {
		p.SetWord(id, 0, 0)
	}
	for _, id := range base.CombInputs() {
		pg.SetWord(id, 0, 0)
	}
	trig := infected.MustLookup(inst.TriggerOut)
	armed := infected.MustLookup(tb.Armed)
	for cycle := 0; cycle < 20; cycle++ {
		p.Step()
		pg.Step()
		if p.Word(trig, 0) != 0 {
			t.Skip("trigger fires on all-zero input on this seed")
		}
		if p.Word(armed, 0) != 0 {
			t.Fatal("time bomb armed without trigger")
		}
		for i, po := range base.POs {
			if pg.Word(po, 0) != p.Word(infected.POs[i], 0) {
				t.Fatalf("cycle %d: dormant time bomb changed an output", cycle)
			}
		}
	}
}

func TestTimeBombRequiresFlipPayload(t *testing.T) {
	base, g, clique := pipeline(t, 30)
	infected, inst, err := InsertInstance(base, clique.Nodes(g), clique.Cube, 0,
		InsertSpec{Seed: 14, Payload: PayloadLeakToOutput})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InsertTimeBomb(infected, inst, TimeBombSpec{}); err == nil {
		t.Fatal("time bomb accepted a leak-payload instance")
	}
}

func TestTimeBombSpecDefaults(t *testing.T) {
	s := TimeBombSpec{}.withDefaults()
	if s.CounterBits != 4 || s.Prefix != "tb" {
		t.Fatalf("defaults = %+v", s)
	}
	big := TimeBombSpec{CounterBits: 99}.withDefaults()
	if big.CounterBits != 20 {
		t.Fatalf("cap = %d, want 20", big.CounterBits)
	}
}
