// Package trojan builds the stealthy trigger logic of Section III-D and
// splices trojan instances into netlists (Algorithm 3).
//
// The trigger tree is grown backward from the activation output: a gate
// that must output v only rarely is drawn from the two gate types whose
// output bias works against v (AND/NOR for v=1, NAND/OR for v=0), and
// its children inherit the required input value of that choice. Leaf
// gates consume rare nodes aligned by rare value: AND/NAND leaves take
// rare-1 nodes, OR/NOR leaves take rare-0 nodes.
package trojan

import (
	"fmt"
	"math/rand"

	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// TriggerSpec parameterizes trigger-tree construction.
type TriggerSpec struct {
	// ActiveLow makes the trigger fire with output 0 instead of 1. The
	// zero value (active-high) matches the paper's Figure 1 example.
	ActiveLow bool
	// FaninK bounds gate arity inside the trigger tree (default 4,
	// minimum 2). The paper's trigger probability analysis assumes
	// k-input gates throughout.
	FaninK int
	// Seed randomizes the (valid) gate-type choices so distinct
	// instances over the same clique differ structurally.
	Seed int64
}

// ActivationValue returns the trigger-output value that fires the
// payload: 1 unless ActiveLow.
func (s TriggerSpec) ActivationValue() uint8 {
	if s.ActiveLow {
		return 0
	}
	return 1
}

func (s TriggerSpec) withDefaults() TriggerSpec {
	if s.FaninK < 2 {
		s.FaninK = 4
	}
	return s
}

// TriggerGate is one gate of the generated trigger logic.
type TriggerGate struct {
	// Type is the gate's function (always one of AND/NAND/OR/NOR).
	Type netlist.GateType
	// Level is 1 for leaf gates (inputs are rare nodes), increasing
	// toward the activation output.
	Level int
	// LeafInputs lists the rare nodes wired to this gate (level 1 only).
	LeafInputs []rare.Node
	// ChildGates indexes other TriggerGates feeding this one.
	ChildGates []int
	// Fires is the gate's output value when the trojan is triggered —
	// by construction the value the gate type is biased against.
	Fires uint8
}

// Trigger is the complete generated trigger logic.
type Trigger struct {
	// Gates in construction order; the last one drives the payload.
	Gates []TriggerGate
	// Root indexes the activation-output gate.
	Root int
	// Spec echoes the construction parameters.
	Spec TriggerSpec
	// TriggerNodes are the rare nodes consumed, in leaf order.
	TriggerNodes []rare.Node
	// ActivationProb is the product of the trigger nodes' rare-value
	// probabilities — the independence estimate of the trigger firing
	// under random patterns.
	ActivationProb float64
}

// Depth returns the number of gate levels.
func (t *Trigger) Depth() int {
	d := 0
	for i := range t.Gates {
		if t.Gates[i].Level > d {
			d = t.Gates[i].Level
		}
	}
	return d
}

// NumGates returns the trigger gate count (payload excluded).
func (t *Trigger) NumGates() int { return len(t.Gates) }

// BuildTrigger generates bias-alternating trigger logic over the given
// rare nodes (a clique's members). It fails if nodes is empty.
func BuildTrigger(nodes []rare.Node, spec TriggerSpec) (*Trigger, error) {
	spec = spec.withDefaults()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("trojan: no trigger nodes")
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	var r0, r1 []rare.Node
	for _, n := range nodes {
		if n.RareValue == 0 {
			r0 = append(r0, n)
		} else {
			r1 = append(r1, n)
		}
	}

	t := &Trigger{Spec: spec, ActivationProb: 1}
	for _, n := range nodes {
		t.ActivationProb *= n.Prob
	}

	// Level 1: partition each pool into groups of <= FaninK. Each group
	// becomes one leaf gate; its type (AND vs NAND / OR vs NOR) is fixed
	// later when required output values propagate down.
	type protoGate struct {
		leaves []rare.Node // non-nil for level-1 gates
		kids   []int
		level  int
	}
	var protos []protoGate
	addLeafGroups := func(pool []rare.Node) []int {
		var idx []int
		for len(pool) > 0 {
			take := spec.FaninK
			if take > len(pool) {
				take = len(pool)
			}
			protos = append(protos, protoGate{leaves: pool[:take], level: 1})
			idx = append(idx, len(protos)-1)
			pool = pool[take:]
		}
		return idx
	}
	level := addLeafGroups(r1)
	level = append(level, addLeafGroups(r0)...)

	// Upper levels: k-ary reduction tree over gate outputs.
	lvl := 1
	for len(level) > 1 {
		lvl++
		var next []int
		for len(level) > 0 {
			take := spec.FaninK
			if take > len(level) {
				take = len(level)
			}
			protos = append(protos, protoGate{kids: append([]int(nil), level[:take]...), level: lvl})
			next = append(next, len(protos)-1)
			level = level[take:]
		}
		level = next
	}
	root := level[0]

	// Assign gate types top-down from the required activation value.
	t.Gates = make([]TriggerGate, len(protos))
	required := make([]uint8, len(protos))
	assigned := make([]bool, len(protos))
	required[root] = spec.ActivationValue()
	assigned[root] = true
	// Process in reverse construction order: parents were appended after
	// children, so a reverse scan sees every parent before its children.
	for i := len(protos) - 1; i >= 0; i-- {
		p := &protos[i]
		if !assigned[i] {
			// Unreachable by construction (every proto has a parent
			// chain to root), but keep the invariant explicit.
			panic("trojan: unassigned trigger gate")
		}
		v := required[i]
		var gt netlist.GateType
		switch {
		case p.leaves != nil && p.leaves[0].RareValue == 1:
			// Rare-1 leaves need an all-1-sensitive gate.
			if v == 1 {
				gt = netlist.And
			} else {
				gt = netlist.Nand
			}
		case p.leaves != nil:
			// Rare-0 leaves need an all-0-sensitive gate.
			if v == 1 {
				gt = netlist.Nor
			} else {
				gt = netlist.Or
			}
		default:
			// Internal gate: both biased options are valid; pick randomly
			// (this is what makes instances over one clique structurally
			// diverse).
			if v == 1 {
				gt = pick(rng, netlist.And, netlist.Nor)
			} else {
				gt = pick(rng, netlist.Nand, netlist.Or)
			}
		}
		// Children must present the gate's all-inputs value: 1 for
		// AND/NAND, 0 for OR/NOR.
		childVal := uint8(0)
		if gt == netlist.And || gt == netlist.Nand {
			childVal = 1
		}
		for _, k := range p.kids {
			required[k] = childVal
			assigned[k] = true
		}
		t.Gates[i] = TriggerGate{
			Type:       gt,
			Level:      p.level,
			LeafInputs: p.leaves,
			ChildGates: p.kids,
			Fires:      v,
		}
		if p.leaves != nil {
			t.TriggerNodes = append(t.TriggerNodes, p.leaves...)
		}
	}
	t.Root = root
	return t, nil
}

func pick(rng *rand.Rand, a, b netlist.GateType) netlist.GateType {
	if rng.Intn(2) == 0 {
		return a
	}
	return b
}

// checkBias verifies the construction invariant: every gate fires with
// the value its type is biased against (AND/NOR rarely output 1, NAND/OR
// rarely output 0). Exported through tests via Verify.
func (t *Trigger) checkBias() error {
	for i := range t.Gates {
		g := &t.Gates[i]
		switch g.Type {
		case netlist.And, netlist.Nor:
			if g.Fires != 1 {
				return fmt.Errorf("trojan: gate %d (%v) fires with 0, biased wrong", i, g.Type)
			}
		case netlist.Nand, netlist.Or:
			if g.Fires != 0 {
				return fmt.Errorf("trojan: gate %d (%v) fires with 1, biased wrong", i, g.Type)
			}
		default:
			return fmt.Errorf("trojan: gate %d has non-trigger type %v", i, g.Type)
		}
		// Leaf alignment (Algorithm 3): AND/NAND ← rare-1, OR/NOR ← rare-0.
		for _, leaf := range g.LeafInputs {
			wantRare := uint8(0)
			if g.Type == netlist.And || g.Type == netlist.Nand {
				wantRare = 1
			}
			if leaf.RareValue != wantRare {
				return fmt.Errorf("trojan: gate %d (%v) wired to rare-%d node",
					i, g.Type, leaf.RareValue)
			}
		}
	}
	return nil
}

// Verify checks the structural invariants of the trigger (bias
// alternation and rare-value alignment).
func (t *Trigger) Verify() error { return t.checkBias() }
