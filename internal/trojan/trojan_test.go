package trojan

import (
	"math/rand"
	"testing"

	"cghti/internal/atpg"
	"cghti/internal/bench"
	"cghti/internal/compat"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/rare"
	"cghti/internal/sim"
)

// mkNodes fabricates rare nodes for trigger construction tests. IDs are
// synthetic; only RareValue matters to BuildTrigger.
func mkNodes(n1, n0 int) []rare.Node {
	var out []rare.Node
	for i := 0; i < n1; i++ {
		out = append(out, rare.Node{ID: netlist.GateID(i), RareValue: 1, Prob: 0.1})
	}
	for i := 0; i < n0; i++ {
		out = append(out, rare.Node{ID: netlist.GateID(1000 + i), RareValue: 0, Prob: 0.1})
	}
	return out
}

func TestBuildTriggerInvariants(t *testing.T) {
	cases := []struct{ n1, n0 int }{
		{1, 0}, {0, 1}, {4, 0}, {0, 4}, {3, 3}, {8, 5}, {25, 0}, {60, 65}, {100, 25},
	}
	for _, tc := range cases {
		for _, lo := range []bool{false, true} {
			act := uint8(1)
			if lo {
				act = 0
			}
			nodes := mkNodes(tc.n1, tc.n0)
			trig, err := BuildTrigger(nodes, TriggerSpec{ActiveLow: lo, FaninK: 4, Seed: 9})
			if err != nil {
				t.Fatalf("n1=%d n0=%d act=%d: %v", tc.n1, tc.n0, act, err)
			}
			if err := trig.Verify(); err != nil {
				t.Fatalf("n1=%d n0=%d act=%d: %v", tc.n1, tc.n0, act, err)
			}
			if len(trig.TriggerNodes) != tc.n1+tc.n0 {
				t.Fatalf("trigger consumed %d nodes, want %d",
					len(trig.TriggerNodes), tc.n1+tc.n0)
			}
			if got := trig.Gates[trig.Root].Fires; got != act {
				t.Fatalf("root fires %d, want %d", got, act)
			}
			// Every rare node appears exactly once as a leaf.
			seen := map[netlist.GateID]int{}
			for i := range trig.Gates {
				for _, l := range trig.Gates[i].LeafInputs {
					seen[l.ID]++
				}
			}
			if len(seen) != tc.n1+tc.n0 {
				t.Fatalf("leaves cover %d nodes, want %d", len(seen), tc.n1+tc.n0)
			}
			for id, c := range seen {
				if c != 1 {
					t.Fatalf("node %d used %d times", id, c)
				}
			}
		}
	}
}

func TestBuildTriggerFaninRespected(t *testing.T) {
	for _, k := range []int{2, 3, 4, 6} {
		trig, err := BuildTrigger(mkNodes(17, 13), TriggerSpec{FaninK: k, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := range trig.Gates {
			g := &trig.Gates[i]
			if got := len(g.LeafInputs) + len(g.ChildGates); got > k {
				t.Fatalf("k=%d: gate %d has %d inputs", k, i, got)
			}
			if len(g.LeafInputs) > 0 && len(g.ChildGates) > 0 {
				t.Fatalf("gate %d mixes leaves and child gates", i)
			}
		}
	}
}

func TestBuildTriggerEmpty(t *testing.T) {
	if _, err := BuildTrigger(nil, TriggerSpec{}); err == nil {
		t.Fatal("BuildTrigger accepted empty node set")
	}
}

func TestBuildTriggerDeterministicBySeed(t *testing.T) {
	a, _ := BuildTrigger(mkNodes(10, 10), TriggerSpec{Seed: 4})
	b, _ := BuildTrigger(mkNodes(10, 10), TriggerSpec{Seed: 4})
	if len(a.Gates) != len(b.Gates) {
		t.Fatal("same seed, different structure")
	}
	for i := range a.Gates {
		if a.Gates[i].Type != b.Gates[i].Type {
			t.Fatal("same seed, different gate types")
		}
	}
}

func TestActivationProbProduct(t *testing.T) {
	nodes := []rare.Node{
		{ID: 1, RareValue: 1, Prob: 0.1},
		{ID: 2, RareValue: 0, Prob: 0.2},
	}
	trig, err := BuildTrigger(nodes, TriggerSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := trig.ActivationProb, 0.1*0.2; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("ActivationProb = %v, want %v", got, want)
	}
}

// pipeline builds circuit → rare → graph → clique for insertion tests.
func pipeline(t *testing.T, seed int64) (*netlist.Netlist, *compat.Graph, compat.Clique) {
	t.Helper()
	n, err := gen.Random(gen.Spec{Name: "base", PIs: 14, POs: 6, Gates: 180, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rare.Extract(n, rare.Config{Vectors: 3000, Threshold: 0.25, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	g, err := compat.Build(n, rs, compat.BuildConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cliques := g.FindCliques(compat.MineConfig{MinSize: 2, MaxCliques: 10, Seed: seed})
	if len(cliques) == 0 {
		t.Skip("no cliques on this seed")
	}
	// Use the largest clique.
	best := cliques[0]
	for _, c := range cliques[1:] {
		if len(c.Vertices) > len(best.Vertices) {
			best = c
		}
	}
	return n, g, best
}

func TestInsertInstanceStructure(t *testing.T) {
	n, g, clique := pipeline(t, 21)
	infected, inst, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0, InsertSpec{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := infected.Validate(); err != nil {
		t.Fatalf("infected netlist invalid: %v", err)
	}
	wantAdded := inst.Trigger.NumGates() + 1 // + payload
	if got := infected.NumGates() - n.NumGates(); got != wantAdded {
		t.Fatalf("added %d gates, want %d", got, wantAdded)
	}
	if len(inst.AddedGates) != wantAdded {
		t.Fatalf("AddedGates lists %d, want %d", len(inst.AddedGates), wantAdded)
	}
	// Original netlist untouched.
	if err := n.Validate(); err != nil {
		t.Fatalf("original netlist mutated: %v", err)
	}
	if _, ok := n.Lookup(inst.PayloadGate); ok {
		t.Fatal("payload gate leaked into the original netlist")
	}
}

// TestInsertedTrojanDormantEquivalence: on vectors that do NOT fire the
// trigger, the infected circuit is functionally identical to the golden
// circuit (the stealth property).
func TestInsertedTrojanDormantEquivalence(t *testing.T) {
	n, g, clique := pipeline(t, 22)
	infected, inst, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0, InsertSpec{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	trigOut := infected.MustLookup(inst.TriggerOut)
	rng := rand.New(rand.NewSource(1))
	inputs := n.CombInputs()
	checked := 0
	for v := 0; v < 300; v++ {
		goldIn := map[netlist.GateID]uint8{}
		infIn := map[netlist.GateID]uint8{}
		for _, id := range inputs {
			val := uint8(rng.Intn(2))
			goldIn[id] = val
			infIn[id] = val // IDs preserved by Clone
		}
		gv, err := sim.Eval(n, goldIn)
		if err != nil {
			t.Fatal(err)
		}
		iv, err := sim.Eval(infected, infIn)
		if err != nil {
			t.Fatal(err)
		}
		if iv[trigOut] == 1 {
			continue // trigger fired (astronomically unlikely); skip
		}
		checked++
		for _, po := range n.POs {
			if gv[po] != iv[po] {
				t.Fatalf("vector %d: dormant trojan changed PO %s", v, n.Gates[po].Name)
			}
		}
	}
	if checked == 0 {
		t.Fatal("every random vector fired the trigger — not a stealthy trojan")
	}
}

// TestInsertedTrojanFiresOnCube: filling the clique's merged cube
// activates the trigger and flips the victim's downstream value.
func TestInsertedTrojanFiresOnCube(t *testing.T) {
	n, g, clique := pipeline(t, 23)
	infected, inst, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0, InsertSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	filled := clique.Cube.Fill(rng)
	in := map[netlist.GateID]uint8{}
	for i, id := range g.InputIDs {
		if filled[i] {
			in[id] = 1
		} else {
			in[id] = 0
		}
	}
	iv, err := sim.Eval(infected, in)
	if err != nil {
		t.Fatal(err)
	}
	trigOut := infected.MustLookup(inst.TriggerOut)
	if iv[trigOut] != 1 {
		t.Fatal("merged cube did not fire the trigger")
	}
	// The payload inverts the victim while active.
	victim := infected.MustLookup(inst.Victim)
	payload := infected.MustLookup(inst.PayloadGate)
	if iv[payload] != iv[victim]^1 {
		t.Fatal("active payload does not invert the victim")
	}
	// And every trigger node sits at its rare value.
	for _, node := range clique.Nodes(g) {
		if iv[node.ID] != node.RareValue {
			t.Fatalf("trigger node %s not at rare value under the cube",
				infected.Gates[node.ID].Name)
		}
	}
}

func TestInsertMultipleInstancesDistinctNames(t *testing.T) {
	n, g, clique := pipeline(t, 24)
	nodes := clique.Nodes(g)
	first, _, err := InsertInstance(n, nodes, clique.Cube, 0, InsertSpec{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a second instance into the already-infected netlist.
	second, inst2, err := InsertInstance(first, nodes, clique.Cube, 1, InsertSpec{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := second.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst2.Index != 1 {
		t.Fatalf("instance index = %d, want 1", inst2.Index)
	}
}

func TestInsertPayloadLeak(t *testing.T) {
	n, g, clique := pipeline(t, 25)
	infected, inst, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0,
		InsertSpec{Seed: 10, Payload: PayloadLeakToOutput})
	if err != nil {
		t.Fatal(err)
	}
	if len(infected.POs) != len(n.POs)+1 {
		t.Fatalf("leak payload: %d POs, want %d", len(infected.POs), len(n.POs)+1)
	}
	// Functional paths untouched: equivalence on ALL vectors for the
	// original POs.
	rng := rand.New(rand.NewSource(3))
	for v := 0; v < 100; v++ {
		in := map[netlist.GateID]uint8{}
		for _, id := range n.CombInputs() {
			in[id] = uint8(rng.Intn(2))
		}
		gv, _ := sim.Eval(n, in)
		iv, _ := sim.Eval(infected, in)
		for _, po := range n.POs {
			if gv[po] != iv[po] {
				t.Fatal("leak payload changed a functional output")
			}
		}
	}
	_ = inst
}

func TestInsertVictimPinned(t *testing.T) {
	n, g, clique := pipeline(t, 26)
	// Find some loop-safe internal net by just trying insertion with a
	// random seed, then reuse its victim as the pinned one.
	_, probe, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0, InsertSpec{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	infected, inst, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0,
		InsertSpec{Seed: 12, Victim: probe.Victim})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Victim != probe.Victim {
		t.Fatalf("victim = %s, want %s", inst.Victim, probe.Victim)
	}
	if err := infected.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertVictimMissing(t *testing.T) {
	n, g, clique := pipeline(t, 27)
	_, _, err := InsertInstance(n, clique.Nodes(g), clique.Cube, 0,
		InsertSpec{Victim: "no_such_net"})
	if err == nil {
		t.Fatal("missing victim accepted")
	}
}

func TestInsertRejectsTriggerNodeVictim(t *testing.T) {
	n, g, clique := pipeline(t, 28)
	nodes := clique.Nodes(g)
	victim := n.Gates[nodes[0].ID].Name
	_, _, err := InsertInstance(n, nodes, clique.Cube, 0, InsertSpec{Victim: victim})
	if err == nil {
		t.Fatal("trigger node accepted as victim")
	}
}

func TestInsertEmptyNodes(t *testing.T) {
	n, err := bench.ParseString("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := InsertInstance(n, nil, atpg.Cube{}, 0, InsertSpec{}); err == nil {
		t.Fatal("empty node set accepted")
	}
}

func TestPayloadKindString(t *testing.T) {
	if PayloadFlip.String() != "flip" || PayloadLeakToOutput.String() != "leak" {
		t.Fatal("PayloadKind.String broken")
	}
}

func TestTriggerDepthReported(t *testing.T) {
	trig, err := BuildTrigger(mkNodes(30, 30), TriggerSpec{FaninK: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if trig.Depth() < 2 {
		t.Fatalf("60-node trigger depth = %d, want >= 2", trig.Depth())
	}
	if trig.NumGates() < 15 {
		t.Fatalf("60-node trigger has only %d gates", trig.NumGates())
	}
}
