package vparse

import (
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at the structural-Verilog parser.
// Invalid input must come back as an error — never a panic or a hang —
// and any module that parses must already satisfy the netlist
// invariants (Parse runs Validate and Levelize before returning).
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Minimal valid module.
		"module m(a, z); input a; output z; not(z, a); endmodule",
		// Declarations, wires, assigns, constants, comments.
		`// header
module top(a, b, z);
  input a, b;
  output z;
  wire w;
  nand g1 (w, a, b); /* named instance */
  assign z = w;
endmodule`,
		"module m(z); output z; assign z = 1'b1; endmodule",
		// DFF with named ports, clk ignored.
		"module m(clk, d, q); input clk, d; output q; dff ff (.q(q), .d(d), .clk(clk)); endmodule",
		// Error shapes the parser must reject cleanly.
		"module m(z); output z; endmodule",                    // undriven output
		"module m(a); input a; foo(a); endmodule",             // unsupported construct
		"module m(a, z); input a; output z; not(z, a);",       // missing endmodule
		"module m(z); output z; dff ff (.q(z)); endmodule",    // dff missing .d
		"module m(z); output z; not(z, ghost); endmodule",     // undriven net
		"module m(a, z); input a; output z; not(); endmodule", // no ports
		"module",                  // truncated
		"module m(a, b; input a;", // unterminated port list
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return // rejected cleanly; that is the contract
		}
		if n == nil {
			t.Fatalf("nil netlist without error for:\n%s", src)
		}
	})
}
