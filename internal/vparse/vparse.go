// Package vparse parses structural gate-level Verilog netlists — the
// other format (besides .bench) that hardware-trojan benchmark suites
// ship in, and the one internal/bench's WriteVerilog emits. Supported
// subset:
//
//   - one module per file, scalar ports only;
//   - input/output/wire declarations (comma-separated lists);
//   - primitive instantiations: and/nand/or/nor/xor/xnor/not/buf with
//     positional ports (output first), any arity;
//   - dff instances with named ports .q/.d/.clk (clk ignored);
//   - assign w = expr where expr is a net name or 1'b0 / 1'b1;
//   - // line and /* block */ comments.
//
// The parser resolves assigns as buffers and marks declared outputs as
// primary outputs.
package vparse

import (
	"fmt"
	"io"
	"os"
	"strings"

	"cghti/internal/netlist"
)

// ParseError reports a syntax error with a token position.
type ParseError struct {
	Token string
	Pos   int
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("vparse: token %d (%q): %s", e.Pos, e.Token, e.Msg)
}

// Parse reads one structural Verilog module from src.
func Parse(r io.Reader, fallbackName string) (*netlist.Netlist, error) {
	src, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks := tokenize(string(src))
	p := &parser{toks: toks}
	return p.parseModule(fallbackName)
}

// ParseFile parses a .v file from disk.
func ParseFile(path string) (*netlist.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	name = strings.TrimSuffix(name, ".v")
	return Parse(f, name)
}

// ParseString parses Verilog text.
func ParseString(src, fallbackName string) (*netlist.Netlist, error) {
	return Parse(strings.NewReader(src), fallbackName)
}

// tokenize splits Verilog into identifier/punctuation tokens, dropping
// comments.
func tokenize(src string) []string {
	var toks []string
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				i++
			}
			i += 2
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdent(c):
			j := i
			for j < n && (isIdent(src[j]) || src[j] == '\'') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			toks = append(toks, string(c))
			i++
		}
	}
	return toks
}

func isIdent(c byte) bool {
	return c == '_' || c == '$' || c == '[' || c == ']' ||
		('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) errf(format string, args ...any) error {
	tok := "<eof>"
	if p.pos < len(p.toks) {
		tok = p.toks[p.pos]
	}
	return &ParseError{Token: tok, Pos: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		p.pos--
		return p.errf("expected %q", tok)
	}
	return nil
}

// identList parses "a, b, c ;" (terminated by ';', consumed).
func (p *parser) identList() ([]string, error) {
	var names []string
	for {
		name := p.next()
		if name == "" || !isIdent(name[0]) {
			p.pos--
			return nil, p.errf("expected identifier")
		}
		names = append(names, name)
		switch p.next() {
		case ",":
			continue
		case ";":
			return names, nil
		default:
			p.pos--
			return nil, p.errf("expected ',' or ';'")
		}
	}
}

var primitives = map[string]netlist.GateType{
	"and": netlist.And, "nand": netlist.Nand,
	"or": netlist.Or, "nor": netlist.Nor,
	"xor": netlist.Xor, "xnor": netlist.Xnor,
	"not": netlist.Not, "buf": netlist.Buf,
}

type instance struct {
	gtype  netlist.GateType
	output string
	inputs []string
}

func (p *parser) parseModule(fallbackName string) (*netlist.Netlist, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name := p.next()
	if name == "" {
		return nil, p.errf("missing module name")
	}
	// Skip the port header "(...);" — declarations carry the direction.
	if p.peek() == "(" {
		depth := 0
		for {
			t := p.next()
			if t == "" {
				return nil, p.errf("unterminated port list")
			}
			if t == "(" {
				depth++
			}
			if t == ")" {
				depth--
				if depth == 0 {
					break
				}
			}
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	var (
		inputs, outputs []string
		declared        = map[string]bool{}
		insts           []instance
		assigns         [][2]string // dst, src ("<const0>"/"<const1>" for literals)
	)

	for {
		switch t := p.next(); t {
		case "endmodule":
			return buildNetlist(name, fallbackName, inputs, outputs, declared, insts, assigns)
		case "":
			return nil, p.errf("missing endmodule")
		case "input":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, names...)
			for _, n := range names {
				declared[n] = true
			}
		case "output":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, names...)
			for _, n := range names {
				declared[n] = true
			}
		case "wire", "reg":
			names, err := p.identList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				declared[n] = true
			}
		case "assign":
			dst := p.next()
			if err := p.expect("="); err != nil {
				return nil, err
			}
			src := p.next()
			switch src {
			case "1'b0":
				src = "<const0>"
			case "1'b1":
				src = "<const1>"
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			assigns = append(assigns, [2]string{dst, src})
		case "dff":
			inst, err := p.parseDFF()
			if err != nil {
				return nil, err
			}
			insts = append(insts, inst)
		default:
			gt, ok := primitives[strings.ToLower(t)]
			if !ok {
				return nil, p.errf("unsupported construct %q", t)
			}
			inst, err := p.parsePrimitive(gt)
			if err != nil {
				return nil, err
			}
			insts = append(insts, inst)
		}
	}
}

// parsePrimitive parses "name (out, in1, in2, ...);" after the gate
// keyword (the instance name is optional in Verilog and ignored here).
func (p *parser) parsePrimitive(gt netlist.GateType) (instance, error) {
	if p.peek() != "(" {
		p.next() // instance name
	}
	if err := p.expect("("); err != nil {
		return instance{}, err
	}
	var ports []string
	for {
		t := p.next()
		if t == "" {
			return instance{}, p.errf("unterminated primitive instance")
		}
		if t == ")" {
			break
		}
		if t == "," {
			continue
		}
		ports = append(ports, t)
	}
	if err := p.expect(";"); err != nil {
		return instance{}, err
	}
	if len(ports) < 2 {
		return instance{}, p.errf("primitive needs an output and at least one input")
	}
	return instance{gtype: gt, output: ports[0], inputs: ports[1:]}, nil
}

// parseDFF parses `dff name (.q(x), .d(y), .clk(z));`.
func (p *parser) parseDFF() (instance, error) {
	if p.peek() != "(" {
		p.next() // instance name
	}
	if err := p.expect("("); err != nil {
		return instance{}, err
	}
	var q, d string
	for {
		t := p.next()
		switch t {
		case ")":
			if err := p.expect(";"); err != nil {
				return instance{}, err
			}
			if q == "" || d == "" {
				return instance{}, p.errf("dff needs .q and .d")
			}
			return instance{gtype: netlist.DFF, output: q, inputs: []string{d}}, nil
		case ",":
			continue
		case ".":
			port := p.next()
			if err := p.expect("("); err != nil {
				return instance{}, err
			}
			net := p.next()
			if err := p.expect(")"); err != nil {
				return instance{}, err
			}
			switch port {
			case "q":
				q = net
			case "d":
				d = net
			case "clk":
				// ignored: the netlist model is single-clock
			default:
				return instance{}, p.errf("unknown dff port %q", port)
			}
		case "":
			return instance{}, p.errf("unterminated dff instance")
		default:
			return instance{}, p.errf("expected named dff port")
		}
	}
}

// buildNetlist assembles the parsed pieces. Assign chains resolve to
// buffers (or constants).
func buildNetlist(name, fallback string, inputs, outputs []string, declared map[string]bool,
	insts []instance, assigns [][2]string) (*netlist.Netlist, error) {
	if name == "" {
		name = fallback
	}
	n := netlist.New(name)
	for _, in := range inputs {
		if in == "clk" {
			continue // global clock, not a logic input
		}
		if _, err := n.AddGate(in, netlist.Input); err != nil {
			return nil, err
		}
	}
	constCount := 0
	for _, a := range assigns {
		dst, src := a[0], a[1]
		switch src {
		case "<const0>", "<const1>":
			t := netlist.Const0
			if src == "<const1>" {
				t = netlist.Const1
			}
			cname := fmt.Sprintf("_const%d", constCount)
			constCount++
			if _, err := n.AddGate(cname, t); err != nil {
				return nil, err
			}
			insts = append(insts, instance{gtype: netlist.Buf, output: dst, inputs: []string{cname}})
		default:
			insts = append(insts, instance{gtype: netlist.Buf, output: dst, inputs: []string{src}})
		}
	}
	// Declare all instance outputs, then connect.
	for _, inst := range insts {
		if _, err := n.AddGate(inst.output, inst.gtype); err != nil {
			return nil, fmt.Errorf("vparse: net %q: %w", inst.output, err)
		}
	}
	for _, inst := range insts {
		dst := n.MustLookup(inst.output)
		for _, in := range inst.inputs {
			src, ok := n.Lookup(in)
			if !ok {
				return nil, fmt.Errorf("vparse: undriven net %q feeding %q", in, inst.output)
			}
			n.Connect(src, dst)
		}
	}
	for _, out := range outputs {
		id, ok := n.Lookup(out)
		if !ok {
			return nil, fmt.Errorf("vparse: output %q is never driven", out)
		}
		n.MarkPO(id)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if err := n.Levelize(); err != nil {
		return nil, err
	}
	return n, nil
}
