package vparse

import (
	"strings"
	"testing"

	"cghti/internal/bench"
	"cghti/internal/equiv"
	"cghti/internal/gen"
	"cghti/internal/netlist"
)

func TestParseBasicModule(t *testing.T) {
	src := `
// simple mux-ish circuit
module top (a, b, sel, y);
  input a, b, sel;
  output y;
  wire nsel, t1, t2;
  not g0 (nsel, sel);
  and g1 (t1, a, sel);
  and g2 (t2, b, nsel);
  or  g3 (y, t1, t2);
endmodule
`
	n, err := ParseString(src, "x")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "top" {
		t.Fatalf("module name %q", n.Name)
	}
	s := n.ComputeStats()
	if s.PIs != 3 || s.POs != 1 || s.Cells != 4 {
		t.Fatalf("stats: %v", s)
	}
	if n.Gates[n.MustLookup("y")].Type != netlist.Or {
		t.Fatal("y is not an OR")
	}
}

func TestParseAssignAndConstants(t *testing.T) {
	src := `
module m (a, y, z, k);
  input a;
  output y, z, k;
  wire w;
  assign w = a;
  buf g0 (y, w);
  assign z = 1'b1;
  assign k = 1'b0;
endmodule
`
	n, err := ParseString(src, "m")
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Gates[n.MustLookup("z")].Fanin; len(got) != 1 ||
		n.Gates[got[0]].Type != netlist.Const1 {
		t.Fatal("assign z = 1'b1 not folded to a constant buffer")
	}
}

func TestParseDFF(t *testing.T) {
	src := `
module seq (clk, a, q);
  input clk, a;
  output q;
  wire d;
  dff ff0 (.q(q), .d(d), .clk(clk));
  xor g0 (d, a, q);
endmodule
`
	n, err := ParseString(src, "seq")
	if err != nil {
		t.Fatal(err)
	}
	if len(n.DFFs) != 1 {
		t.Fatalf("DFFs = %d, want 1", len(n.DFFs))
	}
	if len(n.PIs) != 1 { // clk excluded
		t.Fatalf("PIs = %d, want 1", len(n.PIs))
	}
}

func TestParseBlockComment(t *testing.T) {
	src := `
/* header
   spanning lines */
module m (a, y);
  input a;
  output y;
  not g0 (y, a); // inverter
endmodule
`
	if _, err := ParseString(src, "m"); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"noModule", "wire w;\n", "module"},
		{"unknownConstruct", "module m (a);\ninput a;\nfrobnicate g (a);\nendmodule", "unsupported"},
		{"undrivenOutput", "module m (a, y);\ninput a;\noutput y;\nendmodule", "never driven"},
		{"undrivenInput", "module m (a, y);\ninput a;\noutput y;\nand g (y, a, ghost);\nendmodule", "undriven net"},
		{"dffMissingD", "module m (clk, a, q);\ninput clk, a;\noutput q;\ndff f (.q(q), .clk(clk));\nwire x;\nendmodule", ".q and .d"},
		{"truncated", "module m (a);\ninput a;\n", "endmodule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src, tc.name)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestRoundTripThroughWriter: WriteVerilog output parses back to an
// equivalent circuit — proven with the miter-based checker.
func TestRoundTripThroughWriter(t *testing.T) {
	for _, name := range []string{"c17", "c432", "s298"} {
		orig := gen.MustBenchmark(name)
		var sb strings.Builder
		if err := bench.WriteVerilog(&sb, orig); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ParseString(sb.String(), name)
		if err != nil {
			t.Fatalf("%s: parse back: %v", name, err)
		}
		if len(back.POs) != len(orig.POs) {
			t.Fatalf("%s: PO count changed: %d vs %d", name, len(back.POs), len(orig.POs))
		}
		if len(back.DFFs) != len(orig.DFFs) {
			t.Fatalf("%s: DFF count changed", name)
		}
		// The writer renames POs to po_<net>; equivalence is therefore
		// checked positionally via the miter (input names survive).
		res, err := equiv.Check(orig, back, equiv.Options{MatchInputsByPosition: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Verdict != equiv.Equivalent {
			t.Fatalf("%s: round trip judged %v (diff at %s)", name, res.Verdict, res.DiffOutput)
		}
	}
}

func TestParseNeverPanicsOnFragments(t *testing.T) {
	fragments := []string{
		"module", "endmodule", "(", ")", ";", ",", ".", "=",
		"input", "output", "wire", "assign", "and", "dff",
		"a", "q", "1'b0", "clk",
	}
	src := ""
	for trial := 0; trial < 400; trial++ {
		src = ""
		seed := trial
		for i := 0; i < 2+seed%17; i++ {
			src += fragments[(seed+i*7)%len(fragments)] + " "
			seed = seed*31 + i
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseString(src, "fuzz")
		}()
	}
}
