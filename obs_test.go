package cghti_test

import (
	"testing"

	"cghti"
	"cghti/internal/gen"
	"cghti/internal/obs"
)

// TestGenerateTrace is the pipeline observability smoke test: every
// pipeline stage emits exactly one span under the generate root, the
// StageTimes compatibility view matches the trace, the progress sink
// sees ordered start/end transitions, and the hot-path counters moved.
func TestGenerateTrace(t *testing.T) {
	n, err := gen.Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	snap0 := obs.Default().Snapshot()

	var events []obs.Event
	trace := obs.NewTrace()
	res, err := cghti.Generate(n, cghti.Config{
		RareVectors:     2000,
		MinTriggerNodes: 4,
		Instances:       2,
		Seed:            1,
		Trace:           trace,
		Progress:        obs.FuncSink(func(e obs.Event) { events = append(events, e) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != trace {
		t.Fatal("Result.Trace must expose the configured trace")
	}

	// Exactly one generate root with exactly one child per stage.
	roots := trace.Roots()
	if len(roots) != 1 || roots[0].Name() != cghti.StageGenerate {
		t.Fatalf("roots = %v, want one %q", roots, cghti.StageGenerate)
	}
	counts := map[string]int{}
	for _, c := range roots[0].Children() {
		counts[c.Name()]++
	}
	for _, stage := range cghti.PipelineStages {
		if counts[stage] != 1 {
			t.Fatalf("stage %q has %d spans, want 1 (children: %v)", stage, counts[stage], counts)
		}
	}
	if len(counts) != len(cghti.PipelineStages) {
		t.Fatalf("unexpected extra stage spans: %v", counts)
	}

	// StageTimes is a view derived from the trace.
	want := map[string]int64{
		cghti.StageLevelize:    int64(res.Times.Levelize),
		cghti.StageRareExtract: int64(res.Times.RareExtract),
		cghti.StageCubeGen:     int64(res.Times.CubeGen),
		cghti.StageGraphEdges:  int64(res.Times.GraphEdges),
		cghti.StageCliqueMine:  int64(res.Times.CliqueMine),
		cghti.StageInsert:      int64(res.Times.Insert),
		cghti.StageGenerate:    int64(res.Times.Total),
	}
	for stage, ns := range want {
		if got := trace.Find(stage).Duration().Nanoseconds(); got != ns {
			t.Fatalf("StageTimes mismatch for %s: trace %dns, view %dns", stage, got, ns)
		}
	}
	if res.Times.Total < res.Times.RareExtract {
		t.Fatal("total shorter than a stage")
	}

	// Progress events: each stage starts before it ends, in pipeline
	// order, with rare extraction reporting percent-complete.
	seen := map[string][]obs.EventKind{}
	for _, e := range events {
		seen[e.Stage] = append(seen[e.Stage], e.Kind)
	}
	for _, stage := range cghti.PipelineStages {
		kinds := seen[stage]
		if len(kinds) < 2 || kinds[0] != obs.StageStart || kinds[len(kinds)-1] != obs.StageEnd {
			t.Fatalf("stage %s events = %v, want start...end", stage, kinds)
		}
	}
	var rareProgress int
	for _, k := range seen[cghti.StageRareExtract] {
		if k == obs.StageProgress {
			rareProgress++
		}
	}
	if rareProgress == 0 {
		t.Fatal("rare_extract emitted no progress events")
	}

	// Hot-path counters attributed to this run.
	delta := obs.Default().Snapshot().Delta(snap0)
	for _, name := range []string{
		"atpg.podem_calls", "compat.cubes_generated", "compat.pair_checks",
		"compat.clique_attempts", "sim.packed_vectors", "rare.vectors_simulated",
		"trojan.instances_inserted",
	} {
		if delta.Counters[name] <= 0 {
			t.Fatalf("counter %s did not move (delta %v)", name, delta.Counters)
		}
	}
}

// TestGenerateNoSinkNoTrace covers the default path: no sink, no
// caller trace — Generate must still record a trace and fill
// StageTimes.
func TestGenerateNoSinkNoTrace(t *testing.T) {
	n, err := gen.Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cghti.Generate(n, cghti.Config{RareVectors: 2000, MinTriggerNodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Trace.Find(cghti.StageGenerate) == nil {
		t.Fatal("Generate must create a trace when none is supplied")
	}
	if res.Times.Total <= 0 {
		t.Fatalf("Times.Total = %v", res.Times.Total)
	}
}
