// Pipeline-cache benchmark: cold (fresh cache, every stage computes and
// stores) vs warm (pre-warmed cache, the expensive stages are served
// from it) on the paper's reference circuits. Recorded separately from
// the simulation benchmarks as BENCH_pipeline.json (see the Makefile's
// bench target) so the warm-run speedup can be committed and diffed.
package cghti_test

import (
	"testing"

	"cghti"
	"cghti/internal/gen"
)

// pipelineBenchConfig keeps the cache benchmark at laptop scale while
// leaving enough simulation and PODEM work for the cold/warm gap to be
// visible above noise.
func pipelineBenchConfig(seed int64) cghti.Config {
	return cghti.Config{
		RareVectors:     2000,
		MinTriggerNodes: 4,
		Instances:       3,
		Seed:            seed,
	}
}

func BenchmarkPipelineCache(b *testing.B) {
	for _, circuit := range []string{"c2670", "c5315"} {
		n, err := gen.Benchmark(circuit)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(circuit+"/cold", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := pipelineBenchConfig(1)
				cfg.Cache = cghti.NewCache(0, 0) // fresh: every stage computes
				if _, err := cghti.Generate(n, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(circuit+"/warm", func(b *testing.B) {
			cfg := pipelineBenchConfig(1)
			cfg.Cache = cghti.NewCache(0, 0)
			if _, err := cghti.Generate(n, cfg); err != nil { // prime
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cghti.Generate(n, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.CachedStages) == 0 {
					b.Fatal("warm run hit no cache entries")
				}
			}
		})
	}
}
