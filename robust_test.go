package cghti

import (
	"context"
	"errors"
	"testing"
	"time"

	"cghti/internal/chaos"
)

// robustCircuit loads the small circuit the robustness tests run on.
func robustCircuit(t *testing.T) *Netlist {
	t.Helper()
	n, err := Circuit("c432")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestGenerateCancelMidStage cancels the context while each pipeline
// stage is held inside its hot loop by an injected delay, and checks
// that GenerateContext returns promptly with a StageError naming that
// stage, wrapping context.Canceled, and carrying the partial trace.
func TestGenerateCancelMidStage(t *testing.T) {
	n := robustCircuit(t)
	stages := []string{StageRareExtract, StageCubeGen, StageGraphEdges, StageCliqueMine, StageInsert}
	for _, stageName := range stages {
		t.Run(stageName, func(t *testing.T) {
			chaos.Install(chaos.Spec{
				Stage: stageName, Worker: chaos.AnyWorker,
				Kind: chaos.Delay, Delay: 300 * time.Millisecond, OnHit: 1,
			})
			defer chaos.Uninstall()

			ctx, cancel := context.WithCancel(context.Background())
			timer := time.AfterFunc(30*time.Millisecond, cancel)
			defer timer.Stop()
			defer cancel()

			cfg := smallConfig(1)
			cfg.Workers = 1
			start := time.Now()
			res, err := GenerateContext(ctx, n, cfg)
			elapsed := time.Since(start)

			if err == nil {
				t.Fatal("expected an error from a cancelled run")
			}
			if res != nil {
				t.Fatal("cancelled run must not return a Result")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
			}
			se, ok := AsStageError(err)
			if !ok {
				t.Fatalf("error is not a *StageError: %v", err)
			}
			if se.Stage != stageName {
				t.Fatalf("StageError.Stage = %q, want %q (err: %v)", se.Stage, stageName, err)
			}
			if se.Trace == nil {
				t.Fatal("StageError.Trace is nil; partial trace must be attached")
			}
			root := se.Trace.Find(StageGenerate)
			if root == nil || !root.Aborted() {
				t.Fatal("root generate span must be recorded as aborted")
			}
			if sp := se.Trace.Find(stageName); sp == nil || !sp.Aborted() {
				t.Fatalf("stage span %q must be recorded as aborted", stageName)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("cancelled run took %v; cancellation must be prompt", elapsed)
			}
		})
	}
}

// TestGenerateDeadline lets Config.Deadline expire while cube
// generation is held by an injected delay.
func TestGenerateDeadline(t *testing.T) {
	n := robustCircuit(t)
	chaos.Install(chaos.Spec{
		Stage: StageCubeGen, Worker: chaos.AnyWorker,
		Kind: chaos.Delay, Delay: 300 * time.Millisecond, OnHit: 1,
	})
	defer chaos.Uninstall()

	cfg := smallConfig(1)
	cfg.Workers = 1
	cfg.Deadline = 50 * time.Millisecond
	res, err := Generate(n, cfg)
	if err == nil || res != nil {
		t.Fatalf("expected a deadline failure, got res=%v err=%v", res, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
	se, ok := AsStageError(err)
	if !ok || se.Stage != StageCubeGen {
		t.Fatalf("want StageError naming %s, got %v", StageCubeGen, err)
	}
}

// TestGenerateWorkerPanic injects a panic into the cube-generation
// loop on both the parallel (worker goroutine) and serial (caller
// goroutine) paths; both must surface as a StageError, not a crash.
func TestGenerateWorkerPanic(t *testing.T) {
	n := robustCircuit(t)
	for name, workers := range map[string]int{"parallel": 2, "serial": 1} {
		t.Run(name, func(t *testing.T) {
			chaos.Install(chaos.Spec{
				Stage: StageCubeGen, Worker: chaos.AnyWorker,
				Kind: chaos.Panic, OnHit: 3,
			})
			defer chaos.Uninstall()

			cfg := smallConfig(1)
			cfg.Workers = workers
			res, err := Generate(n, cfg)
			if err == nil || res != nil {
				t.Fatalf("expected a panic-derived failure, got res=%v err=%v", res, err)
			}
			se, ok := AsStageError(err)
			if !ok {
				t.Fatalf("error is not a *StageError: %v", err)
			}
			if se.Stage != StageCubeGen {
				t.Fatalf("StageError.Stage = %q, want %q", se.Stage, StageCubeGen)
			}
			if se.PanicValue == nil {
				t.Fatalf("StageError.PanicValue is nil for %v", err)
			}
			if _, isInjected := se.PanicValue.(*chaos.Injected); !isInjected {
				t.Fatalf("PanicValue = %T, want *chaos.Injected", se.PanicValue)
			}
			if se.Trace == nil {
				t.Fatal("StageError.Trace is nil")
			}
		})
	}
}

// TestGenerateDegradedRareExtract cuts rare extraction short after two
// simulation batches with an injected error; the pipeline must finish
// on the smaller sample and record the degradation.
func TestGenerateDegradedRareExtract(t *testing.T) {
	n := robustCircuit(t)
	chaos.Install(chaos.Spec{
		Stage: StageRareExtract, Worker: chaos.AnyWorker,
		Kind: chaos.Error, OnHit: 3,
	})
	defer chaos.Uninstall()

	cfg := smallConfig(1)
	cfg.Workers = 1
	res, err := Generate(n, cfg)
	if err != nil {
		t.Fatalf("degraded run must still succeed: %v", err)
	}
	if len(res.Degraded) != 1 || res.Degraded[0].Stage != StageRareExtract {
		t.Fatalf("Degraded = %+v, want one %s record", res.Degraded, StageRareExtract)
	}
	d := res.Degraded[0]
	if d.Done <= 0 || d.Done >= d.Total {
		t.Fatalf("degradation Done/Total = %d/%d, want a genuine partial", d.Done, d.Total)
	}
	if res.RareSet.Vectors != d.Done {
		t.Fatalf("RareSet.Vectors = %d, want the %d vectors actually simulated", res.RareSet.Vectors, d.Done)
	}
	if len(res.Benchmarks) == 0 {
		t.Fatal("degraded run emitted no benchmarks")
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("benchmarks from a degraded run must still verify: %v", err)
	}
	if sp := res.Trace.Find(StageRareExtract); sp == nil || !sp.Aborted() {
		t.Fatal("degraded stage span must be recorded as aborted")
	}
}

// TestGenerateDegradedCliqueMine cuts clique mining short after a few
// attempts; every clique found before the cut is complete, so the run
// degrades to fewer instances instead of failing.
func TestGenerateDegradedCliqueMine(t *testing.T) {
	n := robustCircuit(t)
	chaos.Install(chaos.Spec{
		Stage: StageCliqueMine, Worker: chaos.AnyWorker,
		Kind: chaos.Error, OnHit: 4,
	})
	defer chaos.Uninstall()

	cfg := smallConfig(1)
	cfg.Workers = 1
	res, err := Generate(n, cfg)
	if err != nil {
		t.Fatalf("degraded run must still succeed: %v", err)
	}
	if len(res.Degraded) != 1 || res.Degraded[0].Stage != StageCliqueMine {
		t.Fatalf("Degraded = %+v, want one %s record", res.Degraded, StageCliqueMine)
	}
	if len(res.Cliques) == 0 || len(res.Benchmarks) == 0 {
		t.Fatalf("degraded run salvaged nothing: %d cliques, %d benchmarks",
			len(res.Cliques), len(res.Benchmarks))
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("benchmarks from a degraded run must still verify: %v", err)
	}
}

// TestGenerateStageBudgetExpiry drives the StageBudgets path with real
// time: an injected delay makes clique mining blow its budget after
// some cliques are already mined, which must degrade, not fail.
func TestGenerateStageBudgetExpiry(t *testing.T) {
	n := robustCircuit(t)
	chaos.Install(chaos.Spec{
		Stage: StageCliqueMine, Worker: chaos.AnyWorker,
		Kind: chaos.Delay, Delay: 300 * time.Millisecond, OnHit: 10,
	})
	defer chaos.Uninstall()

	cfg := smallConfig(1)
	cfg.Workers = 1
	cfg.StageBudgets = map[string]time.Duration{
		StageCliqueMine: 100 * time.Millisecond,
	}
	res, err := Generate(n, cfg)
	if err != nil {
		t.Fatalf("budget expiry with salvage must degrade, not fail: %v", err)
	}
	if len(res.Degraded) != 1 || res.Degraded[0].Stage != StageCliqueMine {
		t.Fatalf("Degraded = %+v, want one %s record", res.Degraded, StageCliqueMine)
	}
	if !errors.Is(res.Degraded[0].Err, context.DeadlineExceeded) {
		t.Fatalf("degradation cause = %v, want context.DeadlineExceeded", res.Degraded[0].Err)
	}
	if len(res.Benchmarks) == 0 {
		t.Fatal("degraded run emitted no benchmarks")
	}
}

// TestGenerateFailureStageAttribution checks that the pre-existing
// "nothing to work with" failures carry stage attribution.
func TestGenerateFailureStageAttribution(t *testing.T) {
	t.Run("no_rare_nodes", func(t *testing.T) {
		// A buffer chain has no rare nodes at any sane threshold.
		n, err := ParseBenchString("INPUT(a)\nOUTPUT(y)\nb1 = BUFF(a)\ny = NOT(b1)\n", "bufchain")
		if err != nil {
			t.Fatal(err)
		}
		_, err = Generate(n, Config{RareVectors: 500, RareThreshold: 0.05, Seed: 1})
		if err == nil {
			t.Fatal("expected failure")
		}
		if se, ok := AsStageError(err); !ok || se.Stage != StageRareExtract {
			t.Fatalf("want StageError naming %s, got %v", StageRareExtract, err)
		}
	})
	t.Run("no_cliques", func(t *testing.T) {
		n, err := Circuit("c17")
		if err != nil {
			t.Fatal(err)
		}
		_, err = Generate(n, Config{RareVectors: 2000, RareThreshold: 0.3, MinTriggerNodes: 64, Seed: 1})
		if err == nil {
			t.Fatal("expected failure")
		}
		if se, ok := AsStageError(err); !ok || se.Stage != StageCliqueMine {
			t.Fatalf("want StageError naming %s, got %v", StageCliqueMine, err)
		}
	})
}

// TestGeneratePreCancelled runs with an already-cancelled context; the
// pipeline must fail at its first stage without doing any work.
func TestGeneratePreCancelled(t *testing.T) {
	n := robustCircuit(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := GenerateContext(ctx, n, smallConfig(1))
	if err == nil || res != nil {
		t.Fatalf("expected immediate failure, got res=%v err=%v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if se, ok := AsStageError(err); !ok || se.Stage != StageLevelize {
		t.Fatalf("want StageError naming %s, got %v", StageLevelize, err)
	}
}
