// Scale benchmarks: the million-gate path (streaming parse, arena
// levelize, partitioned rare extraction, partitioned compatibility-edge
// build) measured in gates/s at 10⁵ and 10⁶ gates on hierarchical
// synthetic SoCs. Recorded as BENCH_scale.json by `make bench` (see
// cmd/benchjson) so datapoints can be committed and diffed.
//
// Run with -benchtime 1x (the Makefile does): each iteration processes
// the whole netlist, so one iteration is already a stable sample and
// the default 1s auto-scaling would re-run multi-second setups.
package cghti_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"cghti"
	"cghti/internal/compat"
	"cghti/internal/gen"
	"cghti/internal/netlist"
	"cghti/internal/rare"
)

// scalePoints are the benchmark sizes with the partition counts the
// scale path would use at each (≈ gates/4096 cone blocks exist; the
// partition count just has to be small enough that cones stay coarse).
var scalePoints = []struct {
	label string
	gates int
	parts int
}{
	{"100k", 100_000, 16},
	{"1M", 1_000_000, 64},
}

var (
	socMu    sync.Mutex
	socNets  = map[int]*netlist.Netlist{}
	socTexts = map[int][]byte{}
)

// socNet returns the cached SoC netlist for a size (generation at 10⁶
// gates takes seconds; every benchmark in the suite shares one).
func socNet(tb testing.TB, gates int) *netlist.Netlist {
	tb.Helper()
	socMu.Lock()
	defer socMu.Unlock()
	if n, ok := socNets[gates]; ok {
		return n
	}
	n, err := gen.SoC(gen.SoCSpec{Gates: gates, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	socNets[gates] = n
	return n
}

// socText returns the cached .bench rendering of the SoC for a size.
func socText(tb testing.TB, gates int) []byte {
	tb.Helper()
	n := socNet(tb, gates)
	socMu.Lock()
	defer socMu.Unlock()
	if t, ok := socTexts[gates]; ok {
		return t
	}
	var buf bytes.Buffer
	if err := cghti.WriteBench(&buf, n); err != nil {
		tb.Fatal(err)
	}
	socTexts[gates] = buf.Bytes()
	return socTexts[gates]
}

// reportGates converts the elapsed time into the suite's common unit.
func reportGates(b *testing.B, gates int) {
	b.ReportMetric(float64(gates)*float64(b.N)/b.Elapsed().Seconds(), "gates/s")
}

func BenchmarkScaleParseStream(b *testing.B) {
	for _, pt := range scalePoints {
		b.Run(pt.label, func(b *testing.B) {
			text := socText(b, pt.gates)
			b.SetBytes(int64(len(text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := cghti.ParseBenchStream(bytes.NewReader(text), "soc")
				if err != nil {
					b.Fatal(err)
				}
				if c.NumGates() < pt.gates {
					b.Fatalf("parsed %d gates, want >= %d", c.NumGates(), pt.gates)
				}
			}
			reportGates(b, pt.gates)
		})
	}
}

func BenchmarkScaleLevelize(b *testing.B) {
	for _, pt := range scalePoints {
		b.Run(pt.label, func(b *testing.B) {
			c := cghti.CompactOf(socNet(b, pt.gates))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh un-levelized shell per iteration (shared
				// arenas, new level array): Levelize caches its result,
				// so a reused Compact would measure the early-exit.
				b.StopTimer()
				fresh := &netlist.Compact{
					Name: c.Name, Names: c.Names, Types: c.Types,
					FaninStart: c.FaninStart, FaninIdx: c.FaninIdx,
					FanoutStart: c.FanoutStart, FanoutIdx: c.FanoutIdx,
					Level: make([]int32, c.NumGates()),
					PIs:   c.PIs, POs: c.POs, DFFs: c.DFFs,
					POMask: c.POMask,
				}
				b.StartTimer()
				if err := fresh.Levelize(); err != nil {
					b.Fatal(err)
				}
			}
			reportGates(b, pt.gates)
		})
	}
}

func BenchmarkScaleRareExtract(b *testing.B) {
	for _, pt := range scalePoints {
		b.Run(pt.label, func(b *testing.B) {
			n := socNet(b, pt.gates)
			cfg := rare.Config{
				Vectors:    256,
				Threshold:  0.2,
				Seed:       1,
				Partitions: pt.parts,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, err := rare.Extract(n, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if rs.Len() == 0 {
					b.Fatal("no rare nodes")
				}
			}
			reportGates(b, pt.gates)
			b.ReportMetric(float64(pt.gates)*256*float64(b.N)/b.Elapsed().Seconds(), "gate-evals/s")
		})
	}
}

func BenchmarkScaleEdgeBuild(b *testing.B) {
	for _, pt := range scalePoints {
		b.Run(pt.label, func(b *testing.B) {
			n := socNet(b, pt.gates)
			rs, err := rare.Extract(n, rare.Config{
				Vectors: 256, Threshold: 0.2, Seed: 1, Partitions: pt.parts,
			})
			if err != nil {
				b.Fatal(err)
			}
			// The edge pass is the subject here; cube generation is
			// setup. Bound it to ~1200 candidates drawn from the
			// near-threshold END of each rarity list (the rarest nodes
			// are the hardest PODEM targets and would burn the whole
			// backtrack budget) with a small backtrack cap.
			trimmed := &rare.Set{
				RN1:     rs.RN1[max(0, len(rs.RN1)-600):],
				RN0:     rs.RN0[max(0, len(rs.RN0)-600):],
				Vectors: rs.Vectors, Threshold: rs.Threshold, TotalNodes: rs.TotalNodes,
			}
			cfg := compat.BuildConfig{Partitions: pt.parts, MaxBacktracks: 64}
			g, err := compat.BuildCubes(context.Background(), n, trimmed, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if g.NumVertices() < 2 {
				b.Fatal("too few vertices for an edge benchmark")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := g.ConnectEdges(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
			reportGates(b, pt.gates)
			v := float64(g.NumVertices())
			b.ReportMetric(v*(v-1)/2*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

// TestScaleSmoke is the CI-sized partitioned end-to-end check: a
// 10⁴-gate SoC through the full pipeline with partitioning on, run
// under -race by `make ci`. It pins that the scale path stays
// data-race-free and produces verified instances.
func TestScaleSmoke(t *testing.T) {
	n, err := cghti.Circuit("soc:10000")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cghti.Generate(n, cghti.Config{
		RareVectors:   512,
		RareThreshold: 0.08, // strict cutoff keeps the PODEM candidate list CI-sized
		MaxRareNodes:  32,
		Partitions:    8,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Benchmarks) == 0 {
		t.Fatal("no benchmarks emitted")
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}
